//! Resumable service jobs: the §6 query plans broken into per-operator
//! steps, plus a deterministic cost estimate for admission control.
//!
//! A long-running enclave engine (the DuckDB-SGX2 / Polars-in-SGX2
//! endgame of the related work) cannot run a query as one opaque call:
//! the scheduler needs to interleave tenants, check deadlines between
//! operators, and abandon work that can no longer meet its SLO. A
//! [`ServiceJob`] is exactly the monolithic [`crate::run_query`] plan
//! re-expressed as an explicit state machine — one [`ServiceJob::step`]
//! call executes one operator (the same `ops` entries, the same profiler
//! phases, the same helpers) and hands control back. Stepped execution
//! is *cycle-identical* to the monolithic plan, which the tests pin
//! bit-for-bit: resumability costs nothing in the simulated world.
//!
//! [`cost_estimate`] gives admission control a deterministic, cheap
//! (never-executes-anything) prediction of a plan's work from table
//! cardinalities alone — coarse, but monotone in the real cost, which is
//! all load-shedding needs.

use crate::gen::{date, TpchDb, FLAG_R, SEG_BUILDING};
use crate::ops::{for_each_join_tuple, retuple, select_rows, Payload};
use crate::queries::{
    join, materialized_output, q10_agg_step, q10_order_step, q12_line_pred, q19_joint_pred,
    q19_line_pred, q19_part_pred, q3_agg_step, q3_sort_step, q3_topk_step, Query, QueryConfig,
    QueryStats,
};
use crate::sort::SortRow;
use sgx_joins::{JoinStats, Row};
use sgx_sim::{Machine, SimVec};

/// Report of one executed plan step.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Operator name (matches the corresponding [`QueryStats::ops`] entry).
    pub op: &'static str,
    /// Simulated wall cycles the step took.
    pub cycles: f64,
    /// True when the plan finished with this step (stats are available).
    pub done: bool,
}

/// A query plan suspended between operators.
///
/// Create with [`ServiceJob::new`], then call [`ServiceJob::step`] until
/// it reports `done`; [`ServiceJob::stats`] then matches what the
/// monolithic [`crate::run_query`] would have returned on the same
/// machine.
pub struct ServiceJob {
    query: Query,
    cfg: QueryConfig,
    state: State,
    ops: Vec<(&'static str, f64)>,
    start: Option<f64>,
    done: Option<QueryStats>,
}

/// Explicit continuation of every plan: each variant holds exactly the
/// intermediates the remaining operators need.
enum State {
    // Q3: customer(BUILDING) ⋈ orders(early) ⋈ lineitem(late),
    // then sort → per-order revenue → top-k.
    Q3SelCustomer,
    Q3SelOrders { cust: SimVec<Row> },
    Q3JoinCO { cust: SimVec<Row>, orders: SimVec<Row> },
    Q3Reshape { j1: JoinStats },
    Q3SelLineitem { co: SimVec<Row> },
    Q3JoinCOL { co: SimVec<Row>, line: SimVec<Row> },
    Q3Sort { j2: JoinStats },
    Q3AggRevenue { matches: u64, sorted: SimVec<SortRow> },
    Q3TopK { matches: u64, groups: SimVec<SortRow>, glen: usize },
    // Q10: customer ⋈ orders(quarter) ⋈ lineitem(R) ⋈ nation.
    Q10ScanCustomer,
    Q10SelOrders { cust: SimVec<Row> },
    Q10JoinCO { cust: SimVec<Row>, orders: SimVec<Row> },
    Q10Reshape1 { j1: JoinStats },
    Q10SelLineitem { co: SimVec<Row> },
    Q10JoinCOL { co: SimVec<Row>, line: SimVec<Row> },
    Q10Reshape2 { j2: JoinStats },
    Q10ScanNation { col: SimVec<Row> },
    Q10JoinN { nation: SimVec<Row>, col: SimVec<Row> },
    Q10AggRevenue { j3: JoinStats },
    Q10OrderGroups { matches: u64, sums: Vec<u64> },
    // Q12: orders ⋈ lineitem(MAIL/SHIP, consistent dates).
    Q12ScanOrders,
    Q12SelLineitem { orders: SimVec<Row> },
    Q12JoinOL { orders: SimVec<Row>, line: SimVec<Row> },
    // Q19: part ⋈ lineitem with the joint disjunct evaluated post-join.
    Q19SelPart,
    Q19SelLineitem { part: SimVec<Row> },
    Q19JoinPL { part: SimVec<Row>, line: SimVec<Row> },
    Q19PostFilter { j: JoinStats },
    /// Terminal (and the placeholder while a step executes).
    Finished,
}

impl ServiceJob {
    /// A fresh suspended plan for `query`.
    pub fn new(query: Query, cfg: QueryConfig) -> ServiceJob {
        let state = match query {
            Query::Q3 => State::Q3SelCustomer,
            Query::Q10 => State::Q10ScanCustomer,
            Query::Q12 => State::Q12ScanOrders,
            Query::Q19 => State::Q19SelPart,
        };
        ServiceJob { query, cfg, state, ops: Vec::new(), start: None, done: None }
    }

    /// The query class this job executes.
    pub fn query(&self) -> Query {
        self.query
    }

    /// Number of operator steps in the full plan of `query`.
    pub fn steps_total(query: Query) -> usize {
        match query {
            Query::Q3 => 9,
            Query::Q10 => 11,
            Query::Q12 => 3,
            Query::Q19 => 4,
        }
    }

    /// Steps executed so far.
    pub fn steps_done(&self) -> usize {
        self.ops.len()
    }

    /// The finished plan's stats, once every step has run.
    pub fn stats(&self) -> Option<&QueryStats> {
        self.done.as_ref()
    }

    /// True once the plan has completed.
    pub fn is_done(&self) -> bool {
        self.done.is_some()
    }

    /// Execute the next operator. The first step issues the plan's ECALL
    /// (exactly like the monolithic query entry); the last step fills in
    /// [`ServiceJob::stats`]. Stepping a finished job is a no-op that
    /// keeps reporting `done`.
    pub fn step(&mut self, machine: &mut Machine, db: &TpchDb) -> StepReport {
        if self.done.is_some() {
            return StepReport { op: "done", cycles: 0.0, done: true };
        }
        if self.start.is_none() {
            self.start = Some(machine.wall_cycles());
            machine.ecall();
        }
        let state = std::mem::replace(&mut self.state, State::Finished);
        let (next, op, cycles, result) = self.transition(machine, db, state);
        self.ops.push((op, cycles));
        self.state = next;
        if let Some((count, grouped)) = result {
            let start = self.start.unwrap_or(0.0);
            self.done = Some(QueryStats {
                count,
                grouped,
                wall_cycles: machine.wall_cycles() - start,
                ops: self.ops.clone(),
            });
        }
        StepReport { op, cycles, done: self.done.is_some() }
    }

    /// Drive the remaining steps to the end and return the final stats.
    pub fn run_to_completion(&mut self, machine: &mut Machine, db: &TpchDb) -> QueryStats {
        while !self.is_done() {
            self.step(machine, db);
        }
        self.done.clone().unwrap_or(QueryStats {
            count: 0,
            grouped: Vec::new(),
            wall_cycles: 0.0,
            ops: Vec::new(),
        })
    }

    /// Run one operator and produce the continuation. Every arm is a
    /// verbatim transplant of the corresponding block in
    /// [`crate::queries`], so stepped and monolithic execution charge the
    /// same cycles in the same order.
    fn transition(
        &self,
        machine: &mut Machine,
        db: &TpchDb,
        state: State,
    ) -> (State, &'static str, f64, Option<(u64, Vec<(u32, u64)>)>) {
        let cfg = &self.cfg;
        let cores = &cfg.cores;
        match state {
            // --- Q3 ---
            State::Q3SelCustomer => {
                let scope = machine.phase("sel customer");
                let (cust, t) = select_rows(
                    machine,
                    cores,
                    &[&db.customer.mktsegment],
                    &db.customer.custkey,
                    Payload::RowIndex,
                    &|i| db.customer.mktsegment.peek(i) == SEG_BUILDING,
                );
                drop(scope);
                (State::Q3SelOrders { cust }, "sel customer", t, None)
            }
            State::Q3SelOrders { cust } => {
                let cutoff = date(1995, 3, 15);
                let scope = machine.phase("sel orders");
                let (orders, t) = select_rows(
                    machine,
                    cores,
                    &[&db.orders.orderdate],
                    &db.orders.custkey,
                    Payload::Col(&db.orders.orderkey),
                    &|i| db.orders.orderdate.peek(i) < cutoff,
                );
                drop(scope);
                (State::Q3JoinCO { cust, orders }, "sel orders", t, None)
            }
            State::Q3JoinCO { cust, orders } => {
                let scope = machine.phase("join c⋈o");
                let j1 = join(machine, &cust, &orders, cfg, false);
                drop(scope);
                let t = j1.wall_cycles;
                (State::Q3Reshape { j1 }, "join c⋈o", t, None)
            }
            State::Q3Reshape { j1 } => {
                let jt1 = materialized_output(&j1);
                let scope = machine.phase("reshape");
                let (co, t) = retuple(machine, cores, jt1, &j1.output_runs, &|t| Row {
                    key: t.s_payload,
                    payload: t.s_payload,
                });
                drop(scope);
                (State::Q3SelLineitem { co }, "reshape", t, None)
            }
            State::Q3SelLineitem { co } => {
                let cutoff = date(1995, 3, 15);
                let scope = machine.phase("sel lineitem");
                let (line, t) = select_rows(
                    machine,
                    cores,
                    &[&db.lineitem.shipdate],
                    &db.lineitem.orderkey,
                    Payload::RowIndex,
                    &|i| db.lineitem.shipdate.peek(i) > cutoff,
                );
                drop(scope);
                (State::Q3JoinCOL { co, line }, "sel lineitem", t, None)
            }
            State::Q3JoinCOL { co, line } => {
                let scope = machine.phase("join co⋈l");
                let j2 = join(machine, &co, &line, cfg, false);
                drop(scope);
                let t = j2.wall_cycles;
                (State::Q3Sort { j2 }, "join co⋈l", t, None)
            }
            State::Q3Sort { j2 } => {
                let (sorted, t) = q3_sort_step(machine, cfg, &j2);
                (State::Q3AggRevenue { matches: j2.matches, sorted }, "sort", t, None)
            }
            State::Q3AggRevenue { matches, sorted } => {
                let (groups, glen, t) = q3_agg_step(machine, db, &sorted);
                (State::Q3TopK { matches, groups, glen }, "agg revenue", t, None)
            }
            State::Q3TopK { matches, groups, glen } => {
                let (grouped, t) = q3_topk_step(machine, cfg, &groups, glen);
                (State::Finished, "top-k", t, Some((matches, grouped)))
            }

            // --- Q10 ---
            State::Q10ScanCustomer => {
                let scope = machine.phase("scan customer");
                let (cust, t) = select_rows(
                    machine,
                    cores,
                    &[&db.customer.custkey],
                    &db.customer.custkey,
                    Payload::Col(&db.customer.nationkey),
                    &|_| true,
                );
                drop(scope);
                (State::Q10SelOrders { cust }, "scan customer", t, None)
            }
            State::Q10SelOrders { cust } => {
                let (lo, hi) = (date(1993, 10, 1), date(1994, 1, 1));
                let scope = machine.phase("sel orders");
                let (orders, t) = select_rows(
                    machine,
                    cores,
                    &[&db.orders.orderdate],
                    &db.orders.custkey,
                    Payload::Col(&db.orders.orderkey),
                    &|i| {
                        let d = db.orders.orderdate.peek(i);
                        d >= lo && d < hi
                    },
                );
                drop(scope);
                (State::Q10JoinCO { cust, orders }, "sel orders", t, None)
            }
            State::Q10JoinCO { cust, orders } => {
                let scope = machine.phase("join c⋈o");
                let j1 = join(machine, &cust, &orders, cfg, false);
                drop(scope);
                let t = j1.wall_cycles;
                (State::Q10Reshape1 { j1 }, "join c⋈o", t, None)
            }
            State::Q10Reshape1 { j1 } => {
                let jt1 = materialized_output(&j1);
                // key: orderkey, payload: the customer's nationkey.
                let scope = machine.phase("reshape");
                let (co, t) = retuple(machine, cores, jt1, &j1.output_runs, &|t| Row {
                    key: t.s_payload,
                    payload: t.r_payload,
                });
                drop(scope);
                (State::Q10SelLineitem { co }, "reshape", t, None)
            }
            State::Q10SelLineitem { co } => {
                let scope = machine.phase("sel lineitem");
                let (line, t) = select_rows(
                    machine,
                    cores,
                    &[&db.lineitem.returnflag],
                    &db.lineitem.orderkey,
                    Payload::RowIndex,
                    &|i| db.lineitem.returnflag.peek(i) == FLAG_R,
                );
                drop(scope);
                (State::Q10JoinCOL { co, line }, "sel lineitem", t, None)
            }
            State::Q10JoinCOL { co, line } => {
                let scope = machine.phase("join co⋈l");
                let j2 = join(machine, &co, &line, cfg, false);
                drop(scope);
                let t = j2.wall_cycles;
                (State::Q10Reshape2 { j2 }, "join co⋈l", t, None)
            }
            State::Q10Reshape2 { j2 } => {
                let jt2 = materialized_output(&j2);
                // key: nationkey carried from the customer side.
                let scope = machine.phase("reshape");
                let (col, t) = retuple(machine, cores, jt2, &j2.output_runs, &|t| Row {
                    key: t.r_payload,
                    payload: t.s_payload,
                });
                drop(scope);
                (State::Q10ScanNation { col }, "reshape", t, None)
            }
            State::Q10ScanNation { col } => {
                let scope = machine.phase("scan nation");
                let (nation, t) = select_rows(
                    machine,
                    cores,
                    &[&db.nation.nationkey],
                    &db.nation.nationkey,
                    Payload::RowIndex,
                    &|_| true,
                );
                drop(scope);
                (State::Q10JoinN { nation, col }, "scan nation", t, None)
            }
            State::Q10JoinN { nation, col } => {
                let scope = machine.phase("join ⋈n");
                let j3 = join(machine, &nation, &col, cfg, false);
                drop(scope);
                let t = j3.wall_cycles;
                (State::Q10AggRevenue { j3 }, "join ⋈n", t, None)
            }
            State::Q10AggRevenue { j3 } => {
                let (sums, t) = q10_agg_step(machine, db, cfg, &j3);
                (State::Q10OrderGroups { matches: j3.matches, sums }, "agg revenue", t, None)
            }
            State::Q10OrderGroups { matches, sums } => {
                let (grouped, t) = q10_order_step(machine, cfg, &sums);
                (State::Finished, "order groups", t, Some((matches, grouped)))
            }

            // --- Q12 ---
            State::Q12ScanOrders => {
                let scope = machine.phase("scan orders");
                let (orders, t) = select_rows(
                    machine,
                    cores,
                    &[&db.orders.orderkey],
                    &db.orders.orderkey,
                    Payload::RowIndex,
                    &|_| true,
                );
                drop(scope);
                (State::Q12SelLineitem { orders }, "scan orders", t, None)
            }
            State::Q12SelLineitem { orders } => {
                let scope = machine.phase("sel lineitem");
                let (line, t) = select_rows(
                    machine,
                    cores,
                    &[
                        &db.lineitem.shipmode,
                        &db.lineitem.commitdate,
                        &db.lineitem.receiptdate,
                        &db.lineitem.shipdate,
                    ],
                    &db.lineitem.orderkey,
                    Payload::RowIndex,
                    &|i| q12_line_pred(db, i),
                );
                drop(scope);
                (State::Q12JoinOL { orders, line }, "sel lineitem", t, None)
            }
            State::Q12JoinOL { orders, line } => {
                let scope = machine.phase("join o⋈l");
                let j = join(machine, &orders, &line, cfg, true);
                drop(scope);
                (State::Finished, "join o⋈l", j.wall_cycles, Some((j.matches, Vec::new())))
            }

            // --- Q19 ---
            State::Q19SelPart => {
                let scope = machine.phase("sel part");
                let (part, t) = select_rows(
                    machine,
                    cores,
                    &[&db.part.brand, &db.part.container, &db.part.size],
                    &db.part.partkey,
                    Payload::RowIndex,
                    &|i| q19_part_pred(db, i),
                );
                drop(scope);
                (State::Q19SelLineitem { part }, "sel part", t, None)
            }
            State::Q19SelLineitem { part } => {
                let scope = machine.phase("sel lineitem");
                let (line, t) = select_rows(
                    machine,
                    cores,
                    &[&db.lineitem.shipmode, &db.lineitem.shipinstruct, &db.lineitem.quantity],
                    &db.lineitem.partkey,
                    Payload::RowIndex,
                    &|i| q19_line_pred(db, i),
                );
                drop(scope);
                (State::Q19JoinPL { part, line }, "sel lineitem", t, None)
            }
            State::Q19JoinPL { part, line } => {
                let scope = machine.phase("join p⋈l");
                let j = join(machine, &part, &line, cfg, false);
                drop(scope);
                let t = j.wall_cycles;
                (State::Q19PostFilter { j }, "join p⋈l", t, None)
            }
            State::Q19PostFilter { j } => {
                let jt = materialized_output(&j);
                let mut count = 0u64;
                let scope = machine.phase("post filter");
                let t = for_each_join_tuple(machine, cores, jt, &j.output_runs, |c, tup| {
                    let (pi, li) = (tup.r_payload as usize, tup.s_payload as usize);
                    let _ = db.part.brand.get(c, pi);
                    let _ = db.lineitem.quantity.get(c, li);
                    c.compute(8);
                    if q19_joint_pred(db, pi, li) {
                        count += 1;
                    }
                });
                drop(scope);
                (State::Finished, "post filter", t, Some((count, Vec::new())))
            }

            State::Finished => (State::Finished, "done", 0.0, None),
        }
    }
}

/// Deterministic admission-control cost estimate for one plan, in
/// abstract work units that are monotone in the plan's simulated cycles.
///
/// Derived from table cardinalities only — never executes anything, so
/// admission control can price a queue's backlog in O(1) per entry. Scan
/// operators cost one unit per input row; join operators cost
/// `per_join_row` units per row fed into a radix partition + build/probe
/// (the §4.2 optimized variant streams partitions more cheaply, which is
/// what makes it the degraded-mode plan of choice); the Q3/Q10 ordered
/// tails cost `per_sorted_row` units per join-output row driven through
/// the external sort + revenue aggregation.
pub fn cost_estimate(db: &TpchDb, q: Query, optimized: bool) -> f64 {
    let li = db.lineitem_len() as f64;
    let ord = db.orders.orderkey.len() as f64;
    let cust = db.customer.custkey.len() as f64;
    let part = db.part.partkey.len() as f64;
    let nation = db.nation.nationkey.len() as f64;
    // (rows scanned, rows through joins, rows through sort+aggregate);
    // selectivities are the paper's fixed predicates, hard-coded as
    // coarse fractions.
    let (scanned, joined, sorted) = match q {
        Query::Q3 => (cust + ord + li, 0.2 * cust + 0.5 * ord + 0.55 * li, 0.3 * li),
        Query::Q10 => (cust + ord + li + nation, cust + 0.05 * ord + 0.3 * li + nation, 0.25 * li),
        Query::Q12 => (ord + li, ord + 0.01 * li, 0.0),
        Query::Q19 => (part + li, 0.05 * part + 0.02 * li, 0.0),
    };
    let per_join_row = if optimized { 3.0 } else { 4.0 };
    let per_sorted_row = 3.0;
    scanned + joined * per_join_row + sorted * per_sorted_row
}

/// Largest estimate-vs-actual spread admission control tolerates: the
/// max/min ratio of `wall_cycles / cost_estimate` across every plan
/// variant must stay below this bound, because sgx-serve's calibration
/// derives ONE cycles-per-unit factor for the whole query table — a
/// plan whose ratio drifts outside the band is silently mis-priced.
/// The test below keeps the estimate honest as plans grow new steps.
pub const ESTIMATE_SPREAD_TOLERANCE: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::queries::{reference_count, run_query};
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn fresh(sf: f64, setting: Setting) -> (Machine, TpchDb) {
        let mut m = Machine::new(scaled_profile(), setting);
        let db = generate(&mut m, sf, 42);
        (m, db)
    }

    #[test]
    fn stepped_execution_is_cycle_identical_to_monolithic() {
        for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
            for q in Query::all() {
                let (mut m1, db1) = fresh(0.005, setting);
                let mono = run_query(&mut m1, &db1, q, &QueryConfig::new(4));
                let (mut m2, db2) = fresh(0.005, setting);
                let mut job = ServiceJob::new(q, QueryConfig::new(4));
                let stepped = job.run_to_completion(&mut m2, &db2);
                assert_eq!(stepped.count, mono.count, "{}: counts must agree", q.label());
                assert_eq!(stepped.count, reference_count(&db2, q));
                assert_eq!(stepped.grouped, mono.grouped, "{}: ordered outputs", q.label());
                assert_eq!(
                    stepped.wall_cycles.to_bits(),
                    mono.wall_cycles.to_bits(),
                    "{}: stepped plan must charge the exact same cycles",
                    q.label()
                );
                let mono_ops: Vec<&str> = mono.ops.iter().map(|(n, _)| *n).collect();
                let step_ops: Vec<&str> = stepped.ops.iter().map(|(n, _)| *n).collect();
                assert_eq!(step_ops, mono_ops, "{}: same operators in order", q.label());
                for (a, b) in stepped.ops.iter().zip(mono.ops.iter()) {
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "{}: op {} cycles", q.label(), a.0);
                }
            }
        }
    }

    #[test]
    fn step_reports_drive_the_plan_one_operator_at_a_time() {
        let (mut m, db) = fresh(0.003, Setting::PlainCpu);
        for q in Query::all() {
            let mut job = ServiceJob::new(q, QueryConfig::new(2));
            assert_eq!(job.steps_done(), 0);
            assert!(!job.is_done());
            let total = ServiceJob::steps_total(q);
            for i in 1..=total {
                let r = job.step(&mut m, &db);
                assert_eq!(job.steps_done(), i, "{}", q.label());
                assert_eq!(r.done, i == total, "{} step {i}", q.label());
                assert!(r.cycles >= 0.0);
            }
            assert!(job.is_done());
            let n_ops = job.stats().map(|s| s.ops.len()).unwrap_or(0);
            assert_eq!(n_ops, total);
            // Stepping past the end is inert.
            let extra = job.step(&mut m, &db);
            assert!(extra.done && extra.cycles == 0.0);
            assert_eq!(job.steps_done(), total);
        }
    }

    #[test]
    fn degraded_variant_is_result_identical_and_cheaper_in_enclave() {
        // The degradation policy swaps in the §4.2 optimized plan shape;
        // it must never change answers and must actually be cheaper where
        // it matters (in the enclave).
        for q in Query::all() {
            let (mut m, db) = fresh(0.005, Setting::SgxDataInEnclave);
            let mut normal = ServiceJob::new(q, QueryConfig::new(4));
            let a = normal.run_to_completion(&mut m, &db);
            let mut degraded = ServiceJob::new(q, QueryConfig::new(4).with_optimization(true));
            let b = degraded.run_to_completion(&mut m, &db);
            assert_eq!(a.count, b.count, "{}: degraded plan must not change results", q.label());
            assert_eq!(a.grouped, b.grouped, "{}: degraded plan must not reorder output", q.label());
        }
    }

    #[test]
    fn cost_estimate_is_deterministic_and_monotone() {
        let (mut m, _) = fresh(0.001, Setting::PlainCpu);
        let small = generate(&mut m, 0.004, 7);
        let large = generate(&mut m, 0.008, 7);
        for q in Query::all() {
            let c = cost_estimate(&small, q, false);
            assert!(c > 0.0);
            assert_eq!(c, cost_estimate(&small, q, false), "pure function");
            assert!(
                cost_estimate(&large, q, false) > c,
                "{}: estimate must grow with data",
                q.label()
            );
            assert!(
                cost_estimate(&small, q, true) < c,
                "{}: degraded plan must estimate cheaper",
                q.label()
            );
        }
        // The heaviest plan (Q10: three joins over the largest inputs)
        // must estimate above the lightest (Q19: two selective scans).
        assert!(cost_estimate(&small, Query::Q10, false) > cost_estimate(&small, Query::Q19, false));
    }

    #[test]
    fn cost_estimate_tracks_actual_cycles_within_admission_tolerance() {
        // Admission control calibrates one cycles-per-unit factor across
        // all plan variants; the estimate only works if the actual/estimate
        // ratio stays inside a bounded band for EVERY variant — including
        // the new Q3/Q10 sort + aggregation tails.
        let (mut m, db) = fresh(0.005, Setting::SgxDataInEnclave);
        let mut ratios: Vec<(String, f64)> = Vec::new();
        for q in Query::all() {
            for optimized in [false, true] {
                let cfg = QueryConfig::new(4).with_optimization(optimized);
                let stats = run_query(&mut m, &db, q, &cfg);
                let est = cost_estimate(&db, q, optimized);
                ratios.push((format!("{} optimized={optimized}", q.label()), stats.wall_cycles / est));
            }
        }
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for &(_, r) in &ratios {
            lo = lo.min(r);
            hi = hi.max(r);
        }
        assert!(
            hi / lo < ESTIMATE_SPREAD_TOLERANCE,
            "estimate-vs-actual spread {:.2} exceeds admission tolerance {ESTIMATE_SPREAD_TOLERANCE}: {ratios:?}",
            hi / lo
        );
    }
}
