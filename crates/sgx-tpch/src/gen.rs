//! TPC-H subset generator.
//!
//! §6 of the paper uses TPC-H Q3, Q10, Q12 and Q19, "mimicking the
//! evaluation setup for CrkJoin": dates and categorical strings are
//! represented as integers, only the columns the simplified queries touch
//! are generated, and the final aggregation is `count(*)`. All columns are
//! stored columnar in [`SimVec`]s so scans and joins charge the simulator.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sgx_sim::{Machine, SimVec};

/// Days from 1992-01-01 to 1998-12-31 (the TPC-H date domain).
pub const DATE_MAX: i32 = 2556;
/// Integer code of `MKTSEGMENT = 'BUILDING'`.
pub const SEG_BUILDING: i32 = 0;
/// Integer code of `RETURNFLAG = 'R'`.
pub const FLAG_R: i32 = 2;
/// Integer codes of the ship modes used by Q12 and Q19.
pub const MODE_MAIL: i32 = 0;
/// `SHIPMODE = 'SHIP'`.
pub const MODE_SHIP: i32 = 1;
/// `SHIPMODE = 'AIR'`.
pub const MODE_AIR: i32 = 2;
/// `SHIPMODE = 'AIR REG'`.
pub const MODE_AIR_REG: i32 = 3;
/// Total distinct ship modes.
pub const N_MODES: i32 = 7;
/// Integer code of `SHIPINSTRUCT = 'DELIVER IN PERSON'`.
pub const INSTRUCT_DELIVER_IN_PERSON: i32 = 0;

/// Convert a TPC-H date literal `(y, m, d)` to the integer encoding (days
/// since 1992-01-01; months approximated at TPC-H's granularity).
pub const fn date(y: i32, m: i32, d: i32) -> i32 {
    (y - 1992) * 365 + (m - 1) * 30 + (d - 1)
}

/// CUSTOMER columns (Q3, Q10).
pub struct Customer {
    /// Primary key `1..=n`.
    pub custkey: SimVec<i32>,
    /// Market segment code (5 segments).
    pub mktsegment: SimVec<i32>,
    /// Nation key (25 nations).
    pub nationkey: SimVec<i32>,
}

/// ORDERS columns (Q3, Q10, Q12).
pub struct Orders {
    /// Primary key `1..=n`.
    pub orderkey: SimVec<i32>,
    /// FK into CUSTOMER.
    pub custkey: SimVec<i32>,
    /// Order date (integer days).
    pub orderdate: SimVec<i32>,
}

/// LINEITEM columns (all four queries).
pub struct Lineitem {
    /// FK into ORDERS.
    pub orderkey: SimVec<i32>,
    /// FK into PART.
    pub partkey: SimVec<i32>,
    /// Quantity `1..=50`.
    pub quantity: SimVec<i32>,
    /// Discount in percent `0..=10`.
    pub discount: SimVec<i32>,
    /// Extended price (integer cents, correlated with quantity).
    pub extendedprice: SimVec<i32>,
    /// Ship date.
    pub shipdate: SimVec<i32>,
    /// Commit date.
    pub commitdate: SimVec<i32>,
    /// Receipt date.
    pub receiptdate: SimVec<i32>,
    /// Return flag code (N/A/R).
    pub returnflag: SimVec<i32>,
    /// Ship mode code (7 modes).
    pub shipmode: SimVec<i32>,
    /// Ship instruction code (4 instructions).
    pub shipinstruct: SimVec<i32>,
}

/// PART columns (Q19).
pub struct Part {
    /// Primary key `1..=n`.
    pub partkey: SimVec<i32>,
    /// Brand code (25 brands).
    pub brand: SimVec<i32>,
    /// Container code (40 containers).
    pub container: SimVec<i32>,
    /// Size `1..=50`.
    pub size: SimVec<i32>,
}

/// NATION columns (Q10).
pub struct Nation {
    /// Primary key `0..25`.
    pub nationkey: SimVec<i32>,
}

/// The generated database.
pub struct TpchDb {
    /// CUSTOMER table.
    pub customer: Customer,
    /// ORDERS table.
    pub orders: Orders,
    /// LINEITEM table.
    pub lineitem: Lineitem,
    /// PART table.
    pub part: Part,
    /// NATION table.
    pub nation: Nation,
    /// Scale factor the database was generated at.
    pub sf: f64,
}

impl TpchDb {
    /// Rows in LINEITEM.
    pub fn lineitem_len(&self) -> usize {
        self.lineitem.orderkey.len()
    }
}

/// Generate a TPC-H subset at scale factor `sf` into the machine's default
/// data region. Cardinalities follow the spec: 150k customers, 1.5M
/// orders, ~6M lineitems, 200k parts per unit scale factor.
pub fn generate(machine: &mut Machine, sf: f64, seed: u64) -> TpchDb {
    let n_cust = ((150_000.0 * sf) as usize).max(1);
    let n_orders = ((1_500_000.0 * sf) as usize).max(1);
    let n_part = ((200_000.0 * sf) as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed);

    // CUSTOMER
    let mut customer = Customer {
        custkey: machine.alloc(n_cust),
        mktsegment: machine.alloc(n_cust),
        nationkey: machine.alloc(n_cust),
    };
    for i in 0..n_cust {
        customer.custkey.poke(i, i as i32 + 1);
        customer.mktsegment.poke(i, rng.random_range(0..5));
        customer.nationkey.poke(i, rng.random_range(0..25));
    }

    // ORDERS: orderdate leaves room for the longest shipping chain.
    let mut orders = Orders {
        orderkey: machine.alloc(n_orders),
        custkey: machine.alloc(n_orders),
        orderdate: machine.alloc(n_orders),
    };
    for i in 0..n_orders {
        orders.orderkey.poke(i, i as i32 + 1);
        orders.custkey.poke(i, rng.random_range(1..=n_cust as i32));
        orders.orderdate.poke(i, rng.random_range(0..DATE_MAX - 151));
    }

    // LINEITEM: 1..=7 lines per order (avg 4 ⇒ ~6M at SF 1).
    let mut ok = Vec::new();
    let mut lines_of_order = Vec::with_capacity(n_orders);
    for o in 0..n_orders {
        let lines = rng.random_range(1..=7u32);
        lines_of_order.push(lines);
        for _ in 0..lines {
            ok.push(o);
        }
    }
    let n_li = ok.len();
    let mut lineitem = Lineitem {
        orderkey: machine.alloc(n_li),
        partkey: machine.alloc(n_li),
        quantity: machine.alloc(n_li),
        discount: machine.alloc(n_li),
        extendedprice: machine.alloc(n_li),
        shipdate: machine.alloc(n_li),
        commitdate: machine.alloc(n_li),
        receiptdate: machine.alloc(n_li),
        returnflag: machine.alloc(n_li),
        shipmode: machine.alloc(n_li),
        shipinstruct: machine.alloc(n_li),
    };
    for (i, &o) in ok.iter().enumerate() {
        let odate = orders.orderdate.peek(o);
        let ship = odate + rng.random_range(1..=121);
        let commit = odate + rng.random_range(30..=90);
        let receipt = ship + rng.random_range(1..=30);
        lineitem.orderkey.poke(i, o as i32 + 1);
        lineitem.partkey.poke(i, rng.random_range(1..=n_part as i32));
        let qty = rng.random_range(1..=50);
        lineitem.quantity.poke(i, qty);
        lineitem.discount.poke(i, rng.random_range(0..=10));
        lineitem.extendedprice.poke(i, qty * rng.random_range(900..=110_000));
        lineitem.shipdate.poke(i, ship);
        lineitem.commitdate.poke(i, commit);
        lineitem.receiptdate.poke(i, receipt);
        // TPC-H: R or A when the receipt predates the "current date"
        // 1995-06-17, N otherwise.
        let flag = if receipt <= date(1995, 6, 17) {
            if rng.random_range(0..2) == 0 {
                1 // 'A'
            } else {
                FLAG_R
            }
        } else {
            0 // 'N'
        };
        lineitem.returnflag.poke(i, flag);
        lineitem.shipmode.poke(i, rng.random_range(0..N_MODES));
        lineitem.shipinstruct.poke(i, rng.random_range(0..4));
    }

    // PART
    let mut part = Part {
        partkey: machine.alloc(n_part),
        brand: machine.alloc(n_part),
        container: machine.alloc(n_part),
        size: machine.alloc(n_part),
    };
    for i in 0..n_part {
        part.partkey.poke(i, i as i32 + 1);
        part.brand.poke(i, rng.random_range(0..25));
        part.container.poke(i, rng.random_range(0..40));
        part.size.poke(i, rng.random_range(1..=50));
    }

    // NATION
    let mut nation = Nation { nationkey: machine.alloc(25) };
    for i in 0..25 {
        nation.nationkey.poke(i, i as i32);
    }

    TpchDb { customer, orders, lineitem, part, nation, sf }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::scaled_profile;
    use sgx_sim::Setting;

    fn db() -> (Machine, TpchDb) {
        let mut m = Machine::new(scaled_profile(), Setting::PlainCpu);
        let db = generate(&mut m, 0.01, 42);
        (m, db)
    }

    #[test]
    fn cardinalities_scale() {
        let (_m, db) = db();
        assert_eq!(db.customer.custkey.len(), 1500);
        assert_eq!(db.orders.orderkey.len(), 15_000);
        assert_eq!(db.part.partkey.len(), 2000);
        let li = db.lineitem_len();
        // 1..=7 lines per order, mean 4.
        assert!((3 * 15_000..5 * 15_000).contains(&li), "lineitem {li}");
        assert_eq!(db.nation.nationkey.len(), 25);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let (_m, db) = db();
        let n_cust = db.customer.custkey.len() as i32;
        assert!(db.orders.custkey.as_slice_untracked().iter().all(|&c| (1..=n_cust).contains(&c)));
        let n_ord = db.orders.orderkey.len() as i32;
        assert!(db.lineitem.orderkey.as_slice_untracked().iter().all(|&o| (1..=n_ord).contains(&o)));
        let n_part = db.part.partkey.len() as i32;
        assert!(db.lineitem.partkey.as_slice_untracked().iter().all(|&p| (1..=n_part).contains(&p)));
    }

    #[test]
    fn date_chains_are_consistent() {
        let (_m, db) = db();
        for i in 0..db.lineitem_len() {
            let o = db.lineitem.orderkey.peek(i) - 1;
            let odate = db.orders.orderdate.peek(o as usize);
            let ship = db.lineitem.shipdate.peek(i);
            let receipt = db.lineitem.receiptdate.peek(i);
            assert!(ship > odate, "lineitem {i} shipped before ordered");
            assert!(receipt > ship, "lineitem {i} received before shipped");
            assert!(receipt <= DATE_MAX, "date overflow at {i}");
        }
    }

    #[test]
    fn date_literal_encoding() {
        assert_eq!(date(1992, 1, 1), 0);
        assert_eq!(date(1995, 3, 15), 3 * 365 + 2 * 30 + 14);
        assert!(date(1998, 12, 31) <= DATE_MAX);
    }

    #[test]
    fn generation_is_deterministic() {
        let (_m1, a) = db();
        let (_m2, b) = db();
        assert_eq!(a.lineitem.shipdate.as_slice_untracked(), b.lineitem.shipdate.as_slice_untracked());
        assert_eq!(a.part.brand.as_slice_untracked(), b.part.brand.as_slice_untracked());
    }

    #[test]
    fn q6_columns_within_domain() {
        let (_m, db) = db();
        assert!(db.lineitem.discount.as_slice_untracked().iter().all(|&d| (0..=10).contains(&d)));
        for i in 0..db.lineitem_len() {
            let q = db.lineitem.quantity.peek(i);
            let p = db.lineitem.extendedprice.peek(i);
            assert!(p >= q * 900, "price below floor at {i}");
        }
    }

    #[test]
    fn selectivities_are_plausible() {
        let (_m, db) = db();
        // ~20% of customers in each segment.
        let building = db
            .customer
            .mktsegment
            .as_slice_untracked()
            .iter()
            .filter(|&&s| s == SEG_BUILDING)
            .count() as f64
            / db.customer.custkey.len() as f64;
        assert!((0.15..0.25).contains(&building), "BUILDING share {building}");
        // ~25% returnflag 'R' (half of the ~50% of receipts before mid-95).
        let r = db.lineitem.returnflag.as_slice_untracked().iter().filter(|&&f| f == FLAG_R).count()
            as f64
            / db.lineitem_len() as f64;
        assert!((0.15..0.35).contains(&r), "R share {r}");
    }
}
