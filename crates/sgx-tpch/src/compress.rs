//! Dictionary + RLE columnar compression with decompress-inside-enclave
//! scan kernels (ROADMAP item 3).
//!
//! Compression trades bytes for compute, and the simulator already
//! prices both sides: a compressed column moves fewer cache lines
//! through the DRAM/MEE path (cheap in the enclave, where every line
//! pays MEE decryption), but every scan spends extra ALU work decoding.
//! Encoding happens uncharged on the data-owner side — the enclave
//! receives already-encoded columns — while decompression and scans are
//! fully charged enclave kernels.
//!
//! Both encodings are verified by round-trip and scan-equivalence
//! oracles (unit tests here, lockstep proptests in
//! `tests/proptest_operators.rs`).

use sgx_sim::{Core, Machine, SimVec};

/// Dictionary-encoded i32 column: `codes[i]` indexes into `dict`.
/// 16-bit codes halve (vs i32) the bytes a scan streams; the dictionary
/// itself is small enough to stay cache-resident.
pub struct DictColumn {
    codes: SimVec<u16>,
    dict: SimVec<i32>,
    len: usize,
}

impl DictColumn {
    /// Assemble a column from already-built parts (the storage path
    /// rebuilds encoded columns from unsealed bytes).
    pub(crate) fn from_parts(codes: SimVec<u16>, dict: SimVec<i32>) -> DictColumn {
        let len = codes.len();
        DictColumn { codes, dict, len }
    }

    /// Encode `values` (uncharged — runs on the data owner, outside the
    /// simulated machine's cost envelope). The dictionary is the sorted
    /// set of distinct values, so encoding is deterministic. Panics if
    /// the column has more than 2^16 distinct values; callers pick
    /// dictionary encoding only for low-cardinality columns.
    pub fn encode(machine: &mut Machine, values: &[i32]) -> DictColumn {
        let mut rank = std::collections::BTreeMap::new();
        for &v in values {
            rank.entry(v).or_insert(0u16);
        }
        assert!(rank.len() <= usize::from(u16::MAX) + 1, "dictionary overflows 16-bit codes");
        let mut dict = machine.alloc::<i32>(rank.len());
        for (i, (v, code)) in rank.iter_mut().enumerate() {
            *code = i as u16;
            dict.poke(i, *v);
        }
        let mut codes = machine.alloc::<u16>(values.len());
        for (i, v) in values.iter().enumerate() {
            codes.poke(i, rank[v]);
        }
        DictColumn { codes, dict, len: values.len() }
    }

    /// Encoded rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distinct values in the dictionary.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// Bytes of the encoded representation (codes + dictionary).
    pub fn payload_bytes(&self) -> usize {
        self.codes.len() * 2 + self.dict.len() * 4
    }

    /// Charged scan over `range`: loads the dictionary once (it is
    /// small enough to stay cache-resident for the whole scan), then
    /// streams the codes — half the bytes of an i32 column — decoding
    /// each and feeding the value to `f`.
    pub fn scan(&self, c: &mut Core, range: std::ops::Range<usize>, f: &mut dyn FnMut(&mut Core, usize, i32)) {
        let mut table = Vec::with_capacity(self.dict.len());
        self.dict.read_stream(c, 0..self.dict.len(), |c, _, v| {
            c.compute(1);
            table.push(v);
        });
        self.codes.read_stream(c, range, |c, i, code| {
            c.compute(1);
            f(c, i, table[usize::from(code)]);
        });
    }

    /// Charged full decompression into a plain column inside the machine.
    pub fn decompress(&self, machine: &mut Machine) -> SimVec<i32> {
        let mut out = machine.alloc::<i32>(self.len);
        machine.run(|c| {
            let mut writer = out.stream_writer(0);
            self.scan(c, 0..self.len, &mut |c, _, v| writer.push(c, v));
        });
        out
    }
}

/// Run-length-encoded i32 column: run `r` repeats `values[r]` for
/// `lengths[r]` rows. The win for scans is twofold: fewer bytes
/// streamed, and aggregates can consume whole runs at once via
/// [`RleColumn::scan_runs`].
pub struct RleColumn {
    values: SimVec<i32>,
    lengths: SimVec<u32>,
    len: usize,
}

impl RleColumn {
    /// Assemble a column from already-built parts (the storage path
    /// rebuilds encoded columns from unsealed bytes).
    pub(crate) fn from_parts(values: SimVec<i32>, lengths: SimVec<u32>, len: usize) -> RleColumn {
        RleColumn { values, lengths, len }
    }

    /// Encode `values` (uncharged — data-owner side, deterministic).
    pub fn encode(machine: &mut Machine, values: &[i32]) -> RleColumn {
        let mut vs: Vec<i32> = Vec::new();
        let mut ls: Vec<u32> = Vec::new();
        for &v in values {
            match (vs.last(), ls.last_mut()) {
                (Some(&last), Some(l)) if last == v && *l < u32::MAX => *l += 1,
                _ => {
                    vs.push(v);
                    ls.push(1);
                }
            }
        }
        let mut values_sv = machine.alloc::<i32>(vs.len());
        let mut lengths_sv = machine.alloc::<u32>(ls.len());
        for (i, &v) in vs.iter().enumerate() {
            values_sv.poke(i, v);
        }
        for (i, &l) in ls.iter().enumerate() {
            lengths_sv.poke(i, l);
        }
        RleColumn { values: values_sv, lengths: lengths_sv, len: values.len() }
    }

    /// Decoded rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.values.len()
    }

    /// Bytes of the encoded representation (values + lengths).
    pub fn payload_bytes(&self) -> usize {
        self.values.len() * 4 + self.lengths.len() * 4
    }

    /// Charged whole-run scan: streams `(value, run_len)` pairs — the
    /// shape aggregates want, paying per run rather than per row.
    pub fn scan_runs(&self, c: &mut Core, f: &mut dyn FnMut(&mut Core, i32, u32)) {
        let mut lengths = self.lengths.stream_reader(0..self.lengths.len());
        self.values.read_stream(c, 0..self.values.len(), |c, _, v| {
            if let Some(l) = lengths.next(c) {
                c.compute(1);
                f(c, v, l);
            }
        });
    }

    /// Charged full decompression into a plain column inside the machine.
    pub fn decompress(&self, machine: &mut Machine) -> SimVec<i32> {
        let mut out = machine.alloc::<i32>(self.len);
        machine.run(|c| {
            let mut writer = out.stream_writer(0);
            self.scan_runs(c, &mut |c, v, l| {
                for _ in 0..l {
                    writer.push(c, v);
                }
            });
        });
        out
    }
}

/// Uncharged reference: decoded contents of a dictionary column.
pub fn reference_dict_decode(col: &DictColumn) -> Vec<i32> {
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    let dict = col.dict.as_slice_untracked();
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    col.codes.as_slice_untracked().iter().map(|&code| dict[usize::from(code)]).collect()
}

/// Uncharged reference: decoded contents of an RLE column.
pub fn reference_rle_decode(col: &RleColumn) -> Vec<i32> {
    let mut out = Vec::with_capacity(col.len);
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    let values = col.values.as_slice_untracked();
    // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
    for (v, l) in values.iter().zip(col.lengths.as_slice_untracked()) {
        out.extend(std::iter::repeat_n(*v, *l as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgx_sim::config::xeon_gold_6326;
    use sgx_sim::Setting;

    fn clustered(n: usize) -> Vec<i32> {
        let mut x = 0xD1C7u64 | 1;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((x >> 33) % 64) as i32;
            let run = 1 + ((x >> 17) % 6) as usize;
            for _ in 0..run.min(n - out.len()) {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn dict_round_trip_and_scan_match_plain() {
        let mut m = Machine::new(xeon_gold_6326().scaled(64), Setting::SgxDataInEnclave);
        let plain = clustered(5000);
        let col = DictColumn::encode(&mut m, &plain);
        assert!(col.payload_bytes() < plain.len() * 4, "dict must shrink a 64-value column");
        assert_eq!(reference_dict_decode(&col), plain);
        let decoded = col.decompress(&mut m);
        // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
        assert_eq!(decoded.as_slice_untracked(), plain.as_slice());
        let mut sum = 0i64;
        m.run(|c| {
            col.scan(c, 100..4000, &mut |_, _, v| sum += i64::from(v));
        });
        let expect: i64 = plain[100..4000].iter().map(|&v| i64::from(v)).sum();
        assert_eq!(sum, expect);
    }

    #[test]
    fn rle_round_trip_and_run_scan_match_plain() {
        let mut m = Machine::new(xeon_gold_6326().scaled(64), Setting::SgxDataInEnclave);
        let plain = clustered(5000);
        let col = RleColumn::encode(&mut m, &plain);
        assert!(col.run_count() < plain.len(), "clustered data must form multi-row runs");
        assert_eq!(reference_rle_decode(&col), plain);
        let decoded = col.decompress(&mut m);
        // sgx-lint: allow(untracked-access) uncharged reference oracle for verification
        assert_eq!(decoded.as_slice_untracked(), plain.as_slice());
        let (mut sum, mut rows) = (0i64, 0u64);
        m.run(|c| {
            col.scan_runs(c, &mut |_, v, l| {
                sum += i64::from(v) * i64::from(l);
                rows += u64::from(l);
            });
        });
        let expect: i64 = plain.iter().map(|&v| i64::from(v)).sum();
        assert_eq!(sum, expect);
        assert_eq!(rows, plain.len() as u64);
    }

    #[test]
    fn compressed_scans_cost_less_than_plain_in_enclave() {
        // The point of the exercise: fewer MEE-priced lines streamed.
        let n = 200_000;
        let plain_vals = clustered(n);
        let mut m = Machine::new(xeon_gold_6326().scaled(64), Setting::SgxDataInEnclave);
        let mut plain = m.alloc::<i32>(n);
        for (i, &v) in plain_vals.iter().enumerate() {
            plain.poke(i, v);
        }
        let dict = DictColumn::encode(&mut m, &plain_vals);
        let rle = RleColumn::encode(&mut m, &plain_vals);

        m.reset_wall();
        let mut s0 = 0i64;
        m.run(|c| {
            plain.read_stream(c, 0..n, |c, _, v| {
                c.compute(1);
                s0 += i64::from(v);
            });
        });
        let plain_cost = m.wall_cycles();

        m.reset_wall();
        let mut s1 = 0i64;
        m.run(|c| dict.scan(c, 0..n, &mut |_, _, v| s1 += i64::from(v)));
        let dict_cost = m.wall_cycles();

        m.reset_wall();
        let mut s2 = 0i64;
        m.run(|c| rle.scan_runs(c, &mut |_, v, l| s2 += i64::from(v) * i64::from(l)));
        let rle_cost = m.wall_cycles();

        assert_eq!(s0, s1);
        assert_eq!(s0, s2);
        assert!(dict_cost < plain_cost, "dict scan {dict_cost} !< plain {plain_cost}");
        assert!(rle_cost < dict_cost, "rle scan {rle_cost} !< dict {dict_cost}");
    }

    #[test]
    fn empty_and_constant_columns_encode() {
        let mut m = Machine::new(xeon_gold_6326().scaled(64), Setting::PlainCpu);
        let empty = RleColumn::encode(&mut m, &[]);
        assert!(empty.is_empty());
        assert_eq!(reference_rle_decode(&empty), Vec::<i32>::new());
        let konst = DictColumn::encode(&mut m, &[7; 100]);
        assert_eq!(konst.dict_len(), 1);
        assert_eq!(reference_dict_decode(&konst), vec![7; 100]);
    }
}
