//! Criterion benches of the simulator's own hot paths: how many simulated
//! accesses per second the model sustains. These guard the usability of
//! the reproduction (full-profile figures walk billions of events).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sgx_bench_core::prelude::*;
use std::hint::black_box;

fn bench_access_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_access");
    const N: usize = 100_000;
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let tag = match setting {
            Setting::PlainCpu => "native",
            _ => "sgx",
        };
        g.bench_function(format!("random_rmw/{tag}"), |b| {
            let mut m = Machine::new(config::scaled_profile(), setting);
            let mut v = m.alloc::<u64>(1 << 20);
            b.iter(|| {
                m.run(|core| {
                    let mut x = 7u64;
                    for _ in 0..N {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        v.rmw(core, (x >> 33) as usize & ((1 << 20) - 1), |e| *e += 1);
                    }
                });
                black_box(m.wall_cycles())
            })
        });
        g.bench_function(format!("stream_read/{tag}"), |b| {
            let mut m = Machine::new(config::scaled_profile(), setting);
            let v = m.alloc::<u64>(N);
            b.iter(|| {
                let mut sum = 0u64;
                m.run(|core| {
                    v.read_stream(core, 0..N, |_, _, x| sum = sum.wrapping_add(x));
                });
                black_box(sum)
            })
        });
    }
    g.finish();
}

fn bench_grouped_issue(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_groups");
    const N: usize = 100_000;
    g.throughput(Throughput::Elements(N as u64));
    g.sample_size(20);
    g.bench_function("grouped_rmw/sgx", |b| {
        let mut m = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
        let mut v = m.alloc::<u32>(4096);
        b.iter(|| {
            m.run(|core| {
                let mut x = 7u64;
                for _ in 0..N / 8 {
                    let mut idx = [0usize; 8];
                    for slot in &mut idx {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        *slot = (x >> 33) as usize & 4095;
                    }
                    core.group(|core| {
                        for &i in &idx {
                            v.rmw(core, i, |e| *e += 1);
                        }
                    });
                }
            });
            black_box(m.wall_cycles())
        })
    });
    g.finish();
}

fn bench_parallel_phases(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_phases");
    g.sample_size(10);
    g.bench_function("parallel16_scan", |b| {
        let mut m = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
        let col = gen_column(&mut m, 4 << 20, 3);
        b.iter(|| {
            let stats =
                column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &ScanConfig::new(16));
            black_box(stats.matches)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_access_paths, bench_grouped_issue, bench_parallel_phases);
criterion_main!(benches);
