//! Criterion benches over the operator implementations (small inputs).
//!
//! These measure the *simulator's* execution speed per operator — useful
//! for keeping the reproduction fast — while the `src/bin/figNN` binaries
//! report the *simulated* (paper-comparable) numbers. One bench group per
//! experiment family.

use criterion::{criterion_group, criterion_main, Criterion};
use sgx_bench_core::prelude::*;
use sgx_bench_core::sgx_joins::{
    cht::cht_join, crkjoin::crk_join, inl::inl_join, mway::mway_join, pht::pht_join,
    rho::rho_join,
};
use sgx_bench_core::sgx_microbench;
use sgx_bench_core::sgx_scans::{linear_read, LinearConfig, PackedColumn, packed_scan_count, Width};
use sgx_bench_core::sgx_tpch::group_count;
use std::hint::black_box;

const NR: usize = 20_000;
const NS: usize = 80_000;

fn bench_joins(c: &mut Criterion) {
    let mut g = c.benchmark_group("joins");
    g.sample_size(10);
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let tag = match setting {
            Setting::PlainCpu => "native",
            _ => "sgx",
        };
        g.bench_function(format!("rho/{tag}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(config::scaled_profile(), setting);
                let r = gen_pk_relation(&mut m, NR, 1);
                let s = gen_fk_relation(&mut m, NS, NR, 2);
                let cfg = JoinConfig::new(8).with_radix_bits(6);
                black_box(rho_join(&mut m, &r, &s, &cfg).matches)
            })
        });
        g.bench_function(format!("pht/{tag}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(config::scaled_profile(), setting);
                let r = gen_pk_relation(&mut m, NR, 1);
                let s = gen_fk_relation(&mut m, NS, NR, 2);
                black_box(pht_join(&mut m, &r, &s, &JoinConfig::new(8)).matches)
            })
        });
    }
    g.bench_function("mway/native", |b| {
        b.iter(|| {
            let mut m = Machine::new(config::scaled_profile(), Setting::PlainCpu);
            let r = gen_pk_relation(&mut m, NR, 1);
            let s = gen_fk_relation(&mut m, NS, NR, 2);
            black_box(mway_join(&mut m, &r, &s, &JoinConfig::new(8)).matches)
        })
    });
    g.bench_function("inl/native", |b| {
        b.iter(|| {
            let mut m = Machine::new(config::scaled_profile(), Setting::PlainCpu);
            let r = gen_pk_relation(&mut m, NR, 1);
            let s = gen_fk_relation(&mut m, NS, NR, 2);
            black_box(inl_join(&mut m, &r, &s, &JoinConfig::new(8)).matches)
        })
    });
    g.bench_function("crk/native", |b| {
        b.iter(|| {
            let mut m = Machine::new(config::scaled_profile(), Setting::PlainCpu);
            let mut r = gen_pk_relation(&mut m, NR, 1);
            let mut s = gen_fk_relation(&mut m, NS, NR, 2);
            black_box(crk_join(&mut m, &mut r, &mut s, &JoinConfig::new(8).with_radix_bits(8)).matches)
        })
    });
    g.bench_function("cht/sgx", |b| {
        b.iter(|| {
            let mut m = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
            let r = gen_pk_relation(&mut m, NR, 1);
            let s = gen_fk_relation(&mut m, NS, NR, 2);
            black_box(cht_join(&mut m, &r, &s, &JoinConfig::new(8)).matches)
        })
    });
    g.finish();
}

fn bench_packed_and_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_kernels");
    g.sample_size(10);
    g.bench_function("packed12/sgx", |b| {
        let mut m = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
        let vals: Vec<u32> = (0..1_000_000u32).map(|i| i.wrapping_mul(2654435761) & 4095).collect();
        let col = PackedColumn::pack(&mut m, &vals, 12);
        b.iter(|| black_box(packed_scan_count(&mut m, &col, 1, 100, &[0, 1, 2, 3])))
    });
    g.bench_function("linear512/sgx", |b| {
        let mut m = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
        let v = m.alloc::<u64>(1 << 20);
        b.iter(|| black_box(linear_read(&mut m, &v, Width::Bits512, &LinearConfig::new(8))))
    });
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregation");
    g.sample_size(10);
    for optimized in [false, true] {
        let tag = if optimized { "opt" } else { "naive" };
        g.bench_function(format!("group_count/{tag}"), |b| {
            let mut m = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
            let mut rows = m.alloc::<Row>(500_000);
            for i in 0..rows.len() {
                rows.poke(i, Row { key: (i as u32).wrapping_mul(2654435761), payload: 0 });
            }
            b.iter(|| {
                black_box(group_count(&mut m, &[0, 1, 2, 3], &rows, 1024, optimized).counts)
            })
        });
    }
    g.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut g = c.benchmark_group("scans");
    g.sample_size(10);
    for setting in [Setting::PlainCpu, Setting::SgxDataInEnclave] {
        let tag = match setting {
            Setting::PlainCpu => "native",
            _ => "sgx",
        };
        g.bench_function(format!("bitvector/{tag}"), |b| {
            b.iter(|| {
                let mut m = Machine::new(config::scaled_profile(), setting);
                let col = gen_column(&mut m, 1 << 20, 3);
                let stats =
                    column_scan(&mut m, &col, 32, 96, ScanOutput::BitVector, &ScanConfig::new(8));
                black_box(stats.matches)
            })
        });
    }
    g.finish();
}

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.sample_size(10);
    g.bench_function("histogram/naive", |b| {
        b.iter(|| {
            let r = histogram_bench(
                config::scaled_profile(),
                Setting::SgxDataInEnclave,
                200_000,
                1024,
                HistKernel::Naive,
                5,
            );
            black_box(r.cycles)
        })
    });
    g.bench_function("pointer_chase", |b| {
        b.iter(|| {
            let r = sgx_microbench::pointer_chase(
                config::scaled_profile(),
                Setting::SgxDataInEnclave,
                4 << 20,
                50_000,
                5,
            );
            black_box(r.cycles)
        })
    });
    g.finish();
}

fn bench_tpch(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpch");
    g.sample_size(10);
    g.bench_function("q3/sf0.005", |b| {
        b.iter(|| {
            let mut m = Machine::new(config::scaled_profile(), Setting::SgxDataInEnclave);
            let db = sgx_bench_core::sgx_tpch::generate(&mut m, 0.005, 42);
            let stats = run_query(&mut m, &db, Query::Q3, &QueryConfig::new(8));
            black_box(stats.count)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_joins,
    bench_scans,
    bench_micro,
    bench_tpch,
    bench_packed_and_linear,
    bench_aggregation
);
criterion_main!(benches);
