//! Fig 5: random read/write micro-benchmarks.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig05_random_access;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig05_random_access(&profile).emit();
}
