//! Standalone driver for the `sgx-serve` multi-tenant service model.
//!
//! Calibrates the four §6 TPC-H plans on a real simulated machine at one
//! stress point (AEX interrupt rate + EPC pressure level), then serves
//! the fixed two-tenant workload through the deterministic DES and
//! reports counters and exact latency percentiles. The simulated side of
//! the report is byte-identical across runs and hosts; host-side rates
//! (DES events/sec, queries/sec) go to stderr only.
//!
//! Usage:
//!   service_bench [--scale N] [--aex RATE] [--epc LEVEL] [--native]
//!                 [--no-admission] [--no-degrade] [--overload X]
//!                 [--expect-shedding] [--json FILE]
//!
//! `--overload X` divides every tenant's think/gap time by X to push the
//! offered load past capacity. `--expect-shedding` exits nonzero unless
//! the run rejected at least one query — the CI overload gate runs this
//! twice: once as a positive check, once with `--no-admission` expecting
//! the check itself to fail (a service that cannot shed must not pass).

use sgx_bench_core::experiments::service::{calibrate, service_config, tenants, StressPoint};
use sgx_bench_core::json::Value;
use sgx_bench_core::percentile::Histogram;
use sgx_bench_core::profiles::BenchProfile;
use sgx_serve::{run_service, Arrival, ServiceOutcome};
use sgx_sim::config::xeon_gold_6326;
use sgx_sim::Setting;
// sgx-lint: allow(nondeterminism) host wall-clock feeds stderr rates only, never the JSON report
use std::time::Instant;

fn parse_f64(v: Option<String>, what: &str) -> f64 {
    match v.and_then(|s| s.parse().ok()) {
        Some(x) => x,
        None => {
            eprintln!("service_bench: {what} needs a numeric value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut scale: usize = 512;
    let mut stress = StressPoint { aex_per_mcycle: 0.0, epc_level: 0.0 };
    let mut setting = Setting::SgxDataInEnclave;
    let mut admission = true;
    let mut degrade = true;
    let mut overload = 1.0f64;
    let mut expect_shedding = false;
    let mut json_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => scale = parse_f64(args.next(), "--scale") as usize,
            "--aex" => stress.aex_per_mcycle = parse_f64(args.next(), "--aex"),
            "--epc" => stress.epc_level = parse_f64(args.next(), "--epc"),
            "--native" => setting = Setting::PlainCpu,
            "--no-admission" => admission = false,
            "--no-degrade" => degrade = false,
            "--overload" => overload = parse_f64(args.next(), "--overload"),
            "--expect-shedding" => expect_shedding = true,
            "--json" => json_out = args.next(),
            other => {
                eprintln!("service_bench: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let p = BenchProfile { hw: xeon_gold_6326().scaled(scale.max(1)), data_div: scale.max(1), reps: 1 };
    eprintln!(
        "service_bench: calibrating at scale {scale}, aex={}/Mcycle, epc={}, {}",
        stress.aex_per_mcycle,
        stress.epc_level,
        setting.label()
    );
    // sgx-lint: allow(nondeterminism) calibration wall-clock goes to stderr only
    let t0 = Instant::now();
    let cal = calibrate(&p, setting, stress);
    eprintln!("service_bench: calibration took {:.1} ms", t0.elapsed().as_secs_f64() * 1e3);

    // The workload is sized from THIS table's mean so the bin is useful
    // standalone at any scale; the registry experiment instead anchors
    // every point to the calm enclave mean.
    let m = cal.costs.mean_total(sgx_serve::PlanVariant::Normal);
    eprintln!(
        "service_bench: mean plan cost {:.0} cycles normal, {:.0} degraded ({} byte footprint)",
        m,
        cal.costs.mean_total(sgx_serve::PlanVariant::Degraded),
        cal.db_bytes
    );
    let mut cfg = service_config(m, stress.epc_level, degrade);
    cfg.admission.enabled = admission;
    let mut ts = tenants(m);
    if overload != 1.0 {
        for t in &mut ts {
            t.arrival = match t.arrival {
                Arrival::Open { mean_gap_cycles } => Arrival::Open {
                    mean_gap_cycles: ((mean_gap_cycles as f64 / overload) as u64).max(1),
                },
                Arrival::Closed { think_cycles } => Arrival::Closed {
                    think_cycles: ((think_cycles as f64 / overload) as u64).max(1),
                },
            };
        }
    }

    // sgx-lint: allow(nondeterminism) DES wall-clock feeds the stderr events/sec rate only
    let t0 = Instant::now();
    let out = run_service(&cfg, &ts, &cal.costs);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    if let Err(e) = out.reconcile() {
        eprintln!("service_bench: counters failed to reconcile: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "service_bench: {} events, {} queries in {:.1} ms ({:.0} events/sec, {:.0} queries/sec)",
        out.events_processed,
        out.total.submitted,
        secs * 1e3,
        out.events_processed as f64 / secs,
        out.total.submitted as f64 / secs,
    );
    let c = &out.total;
    eprintln!(
        "service_bench: submitted={} admitted={} rejected={} completed={} timed_out={} \
         retries={} degraded={}",
        c.submitted, c.admitted, c.rejected, c.completed, c.timed_out, c.retries, c.degraded
    );
    for (q, lats) in &out.latencies {
        let h: Histogram = lats.iter().copied().collect();
        eprintln!(
            "service_bench: {q:?} n={} p50={} p95={} p99={} cycles",
            h.len(),
            h.p50().unwrap_or(0),
            h.p95().unwrap_or(0),
            h.p99().unwrap_or(0),
        );
    }

    let doc = report(scale, &stress, setting, &out);
    match &json_out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, doc.pretty() + "\n") {
                eprintln!("service_bench: write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("service_bench: wrote {path}");
        }
        None => println!("{}", doc.pretty()),
    }

    if expect_shedding && out.total.rejected == 0 {
        eprintln!("service_bench: FAIL — expected admission control to shed load, rejected=0");
        std::process::exit(1);
    }
}

/// The byte-stable simulated-side report (no wall-clock anywhere).
fn report(scale: usize, stress: &StressPoint, setting: Setting, out: &ServiceOutcome) -> Value {
    let counters = |c: &sgx_serve::ServiceCounters| {
        Value::Obj(vec![
            ("submitted".into(), Value::Num(c.submitted as f64)),
            ("admitted".into(), Value::Num(c.admitted as f64)),
            ("rejected".into(), Value::Num(c.rejected as f64)),
            ("completed".into(), Value::Num(c.completed as f64)),
            ("timed_out".into(), Value::Num(c.timed_out as f64)),
            ("retries".into(), Value::Num(c.retries as f64)),
            ("degraded".into(), Value::Num(c.degraded as f64)),
        ])
    };
    let classes: Vec<Value> = out
        .latencies
        .iter()
        .map(|(q, lats)| {
            let h: Histogram = lats.iter().copied().collect();
            Value::Obj(vec![
                ("class".into(), Value::Str(format!("{q:?}"))),
                ("n".into(), Value::Num(h.len() as f64)),
                ("p50_cycles".into(), Value::Num(h.p50().unwrap_or(0) as f64)),
                ("p95_cycles".into(), Value::Num(h.p95().unwrap_or(0) as f64)),
                ("p99_cycles".into(), Value::Num(h.p99().unwrap_or(0) as f64)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("scale".into(), Value::Num(scale as f64)),
        ("setting".into(), Value::Str(setting.label().into())),
        ("aex_per_mcycle".into(), Value::Num(stress.aex_per_mcycle)),
        ("epc_level".into(), Value::Num(stress.epc_level)),
        ("events_processed".into(), Value::Num(out.events_processed as f64)),
        ("end_cycles".into(), Value::Num(out.end_cycles as f64)),
        ("total".into(), counters(&out.total)),
        ("classes".into(), Value::Arr(classes)),
    ])
}
