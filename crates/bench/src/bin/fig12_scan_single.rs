//! Fig 12: single-threaded scan throughput.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig12_scan_single;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig12_scan_single(&profile).emit();
}
