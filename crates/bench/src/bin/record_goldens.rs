//! Record the refactor-equivalence goldens (`tests/goldens/`).
//!
//! Runs the full figure registry sequentially under the dedicated golden
//! profile (`BenchProfile::golden()`) with per-job cycle-attribution
//! profiling on, digests every figure's JSON bytes, every job's counter
//! report, and every job's `<job>.profile.json` bytes, and writes
//! `tests/goldens/figure_digests.json`. The digests pin the cost model —
//! including where each cycle lands across the nine `CostCategory` bins:
//! `tests/integration_equivalence.rs` asserts that later trees — and
//! parallel `--jobs N` runs — reproduce them bit-for-bit.
//!
//! Re-run this bin ONLY when a PR deliberately changes the model (new
//! experiment, recalibrated constant) — never to paper over an
//! unexplained mismatch; that mismatch is the tool working.

use std::process::ExitCode;

use sgx_bench_core::golden::{counters_digest, figure_digest, profile_digest, GoldenJob, Goldens};
use sgx_bench_core::runner::{registry, run_registry, JobStatus, RunConfig};
use sgx_bench_core::BenchProfile;

const GOLDENS_PATH: &str = "tests/goldens/figure_digests.json";

fn main() -> ExitCode {
    let jobs = registry();
    let profile = BenchProfile::golden();
    eprintln!("recording goldens under profile: {}", BenchProfile::golden_tag());
    // Sequential on purpose: the goldens define the reference outcome,
    // and `jobs: 1` is exactly the pre-parallel harness behavior.
    // Profiling on so the goldens also pin per-bin cycle attribution.
    let cfg = RunConfig { jobs: 1, profile: true, ..RunConfig::default() };
    let outcomes = run_registry(&jobs, &profile, &cfg);
    let failed: Vec<&str> =
        outcomes.iter().filter(|o| o.status != JobStatus::Ok).map(|o| o.id.as_str()).collect();
    if !failed.is_empty() {
        eprintln!("error: goldens need every job ok; failed/skipped: {}", failed.join(", "));
        return ExitCode::FAILURE;
    }
    let goldens = Goldens {
        profile: BenchProfile::golden_tag().to_string(),
        jobs: outcomes
            .iter()
            .map(|o| GoldenJob {
                id: o.id.clone(),
                counters: counters_digest(&o.counters),
                profile: profile_digest(
                    &o.id,
                    o.profile.as_ref().expect("profiled run carries a profile per ok job"),
                ),
                figures: o.figures.iter().map(|f| (f.id.clone(), figure_digest(f))).collect(),
            })
            .collect(),
    };
    let write = std::fs::create_dir_all("tests/goldens")
        .map_err(|e| e.to_string())
        .and_then(|()| std::fs::write(GOLDENS_PATH, goldens.to_json()).map_err(|e| e.to_string()));
    if let Err(e) = write {
        eprintln!("error: could not write {GOLDENS_PATH}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {GOLDENS_PATH} ({} jobs)", goldens.jobs.len());
    ExitCode::SUCCESS
}
