//! Fig 9: NUMA extremes for the RHO join.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig09_numa_join;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig09_numa_join(&profile).emit();
}
