//! Fig 11: static vs dynamically grown enclave.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig11_edmm;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig11_edmm(&profile).emit();
}
