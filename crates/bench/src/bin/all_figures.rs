//! Regenerate every table and figure of the paper — resiliently and in
//! parallel.
//!
//! Figure jobs run on a work-stealing-lite thread pool
//! (`sgx_bench_core::runner::run_registry`): `--jobs N` worker threads
//! pull jobs from a shared cursor, each job owns its own deterministic
//! `Machine`s, and results are committed in registry order — so every
//! figure JSON and the normalized manifest are byte-identical for any
//! `--jobs` value (proven by `tests/integration_equivalence.rs` and the
//! `ci.sh` double-run diff). A panicking experiment (a violated shape
//! assertion, a model regression) is isolated and recorded, the run
//! continues, and the process exits nonzero if anything failed. The
//! outcome of every registered job lands in
//! `target/figures/manifest.json` (schema `sgx-bench-manifest/1`).
//!
//! Options:
//!   `--full` / `--reps N` / `--scale N`   profile selection (as before)
//!   `--jobs N`                            worker threads (default: all cores)
//!   `--only id[,id...]`                   run only the named jobs
//!   `--skip id[,id...]`                   exclude the named jobs
//!   `--retry-failed`                      `--only` = failed ids of the last manifest
//!   `--profile`                           collect per-phase cycle attribution and
//!                                         write `<id>.profile.json` / `.profile.svg`
//!   `--list`                              print registered job ids and exit
//!   `--normalize-manifest FILE`           print FILE with seconds zeroed and exit
//!                                         (for determinism byte-diffs)

use std::process::ExitCode;

use sgx_bench_core::runner::{
    default_jobs, registry, JobFilter, JobStatus, Manifest, RunConfig,
};
use sgx_bench_core::sgx_sim::Counters;
use sgx_bench_core::RunOpts;

const MANIFEST_PATH: &str = "target/figures/manifest.json";

/// Everything the harness-specific flags parse into; the remainder of
/// argv goes to `RunOpts::parse_from` (which ignores what it does not
/// know).
struct HarnessArgs {
    filter: JobFilter,
    jobs: usize,
    list: bool,
    retry_failed: bool,
    profile: bool,
    normalize: Option<String>,
    rest: Vec<String>,
}

fn parse_harness_args(args: impl IntoIterator<Item = String>) -> Result<HarnessArgs, String> {
    let mut parsed = HarnessArgs {
        filter: JobFilter::default(),
        jobs: default_jobs(),
        list: false,
        retry_failed: false,
        profile: false,
        normalize: None,
        rest: Vec::new(),
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--only" | "--skip" => {
                let val = it.next().ok_or_else(|| format!("{arg} needs a job id list"))?;
                let dst =
                    if arg == "--only" { &mut parsed.filter.only } else { &mut parsed.filter.skip };
                dst.extend(
                    val.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                );
            }
            "--jobs" => {
                let val = it.next().ok_or_else(|| "--jobs needs a thread count".to_string())?;
                parsed.jobs = match val.as_str() {
                    "max" => default_jobs(),
                    n => n
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--jobs needs a positive integer or 'max', got {n:?}"))?,
                };
            }
            "--normalize-manifest" => {
                let val = it.next().ok_or_else(|| "--normalize-manifest needs a file".to_string())?;
                parsed.normalize = Some(val);
            }
            "--list" => parsed.list = true,
            "--retry-failed" => parsed.retry_failed = true,
            "--profile" => parsed.profile = true,
            _ => parsed.rest.push(arg),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let mut args = match parse_harness_args(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.normalize {
        // Normalization mode: reprint an existing manifest with timing
        // noise removed, for byte-identity comparisons.
        let normalized = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| Manifest::from_json(&t))
            .map(|m| m.normalized().to_json());
        return match normalized {
            Ok(json) => {
                println!("{json}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: --normalize-manifest {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let jobs = registry();
    if args.list {
        for job in &jobs {
            println!("{}", job.id);
        }
        return ExitCode::SUCCESS;
    }
    if args.retry_failed {
        let prev = std::fs::read_to_string(MANIFEST_PATH)
            .map_err(|e| e.to_string())
            .and_then(|t| Manifest::from_json(&t));
        match prev {
            Ok(prev) => {
                let failed = prev.failed_ids();
                if failed.is_empty() {
                    eprintln!("--retry-failed: previous manifest has no failed jobs; nothing to do");
                    return ExitCode::SUCCESS;
                }
                eprintln!("--retry-failed: re-running {}", failed.join(", "));
                args.filter.only.extend(failed);
            }
            Err(e) => {
                eprintln!("error: --retry-failed could not read {MANIFEST_PATH}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let unknown = args.filter.unknown_ids(&jobs);
    if !unknown.is_empty() {
        eprintln!("error: unknown job id(s): {} (see --list)", unknown.join(", "));
        return ExitCode::FAILURE;
    }

    let profile = RunOpts::parse_from(args.rest).profile();
    eprintln!(
        "profile: {} (data 1/{}, {} reps, {} jobs)",
        profile.hw.name, profile.data_div, profile.reps, args.jobs
    );

    let cfg = RunConfig {
        jobs: args.jobs,
        filter: args.filter,
        profile: args.profile,
        // Deterministic failure hook for the CI negative test.
        fail_injection: std::env::var("ALL_FIGURES_FAIL").ok(),
    };
    let outcomes = sgx_bench_core::runner::run_registry(&jobs, &profile, &cfg);

    // Emission happens on the main thread in registry order, after all
    // jobs finished — output files never depend on scheduling.
    for outcome in &outcomes {
        for figure in &outcome.figures {
            figure.emit();
        }
        if let Some(p) = &outcome.profile {
            sgx_bench_core::report::emit_profile(&outcome.id, p);
        }
    }

    let manifest = Manifest::from_outcomes(&outcomes);
    let (n_ok, n_failed, n_skipped) = (
        manifest.count(JobStatus::Ok),
        manifest.count(JobStatus::Failed),
        manifest.count(JobStatus::Skipped),
    );
    let write = std::fs::create_dir_all("target/figures")
        .map_err(|e| e.to_string())
        .and_then(|()| std::fs::write(MANIFEST_PATH, manifest.to_json()).map_err(|e| e.to_string()));
    if let Err(e) = write {
        eprintln!("error: could not write {MANIFEST_PATH}: {e}");
        return ExitCode::FAILURE;
    }

    // Aggregate counter table: the merged totals of every machine every
    // job created — harness-level observability for "where did the run's
    // simulated work go".
    let mut total = Counters::default();
    for outcome in &outcomes {
        total.merge(&outcome.counters);
    }
    println!("== aggregate simulated counters ({n_ok} jobs ok) ==");
    print!("{}", total.report());

    eprintln!("manifest: {MANIFEST_PATH} ({n_ok} ok, {n_failed} failed, {n_skipped} skipped)");
    if n_failed > 0 {
        eprintln!("failed jobs: {}", manifest.failed_ids().join(", "));
        eprintln!("re-run just these with: all_figures --retry-failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
