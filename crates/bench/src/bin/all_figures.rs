//! Regenerate every table and figure of the paper in order.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments as ex;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    eprintln!("profile: {} (data 1/{}, {} reps)", profile.hw.name, profile.data_div, profile.reps);
    ex::table1(&profile).emit();
    ex::fig01_intro(&profile).emit();
    ex::fig03_overview(&profile).emit();
    let (a, b) = ex::fig04_pht(&profile);
    a.emit();
    b.emit();
    ex::fig05_random_access(&profile).emit();
    ex::fig06_rho_breakdown(&profile).emit();
    ex::fig07_histogram(&profile).emit();
    ex::fig08_optimized(&profile).emit();
    ex::fig09_numa_join(&profile).emit();
    ex::fig10_queues(&profile).emit();
    ex::fig11_edmm(&profile).emit();
    ex::fig12_scan_single(&profile).emit();
    ex::fig13_scan_scaling(&profile).emit();
    ex::fig14_selectivity(&profile).emit();
    ex::fig15_linear(&profile).emit();
    ex::fig16_numa_scan(&profile).emit();
    ex::fig17_tpch(&profile).emit();
    ex::sgxv1_ablation(&profile).emit();
    ex::ext_skew(&profile).emit();
    ex::ext_aggregation(&profile).emit();
    ex::ext_dual_socket_scan(&profile).emit();
    ex::ext_packed_scan(&profile).emit();
    ex::ablation_swwcb(&profile).emit();
    ex::ablation_radix_bits(&profile).emit();
}
