//! Regenerate every table and figure of the paper — resiliently.
//!
//! Each figure job runs behind `catch_unwind`: a panicking experiment (a
//! violated shape assertion, a model regression) is recorded and the run
//! continues, so one broken figure no longer costs the whole suite. The
//! outcome of every registered job lands in `target/figures/manifest.json`
//! (schema `sgx-bench-manifest/1`, byte-stable), and the process exits
//! nonzero if anything failed.
//!
//! Options:
//!   `--full` / `--reps N` / `--scale N`   profile selection (as before)
//!   `--only id[,id...]`                   run only the named jobs
//!   `--skip id[,id...]`                   exclude the named jobs
//!   `--retry-failed`                      `--only` = failed ids of the last manifest
//!   `--list`                              print registered job ids and exit

use std::panic::{self, AssertUnwindSafe};
use std::process::ExitCode;
// Wall-clock timing is confined to this harness binary: it feeds the
// manifest's `seconds` diagnostics, never a simulated measurement.
// sgx-lint: allow(nondeterminism) harness-only wall-clock for manifest timings
use std::time::Instant as WallClock;

use sgx_bench_core::runner::{registry, JobFilter, JobStatus, Manifest, ManifestEntry};
use sgx_bench_core::RunOpts;

const MANIFEST_PATH: &str = "target/figures/manifest.json";

/// Split the harness-specific flags out of `argv`; the remainder goes to
/// `RunOpts::parse_from` (which ignores what it does not know).
fn parse_harness_args(
    args: impl IntoIterator<Item = String>,
) -> Result<(JobFilter, bool, bool, Vec<String>), String> {
    let mut filter = JobFilter::default();
    let mut list = false;
    let mut retry_failed = false;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--only" | "--skip" => {
                let val = it.next().ok_or_else(|| format!("{arg} needs a job id list"))?;
                let dst = if arg == "--only" { &mut filter.only } else { &mut filter.skip };
                dst.extend(
                    val.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from),
                );
            }
            "--list" => list = true,
            "--retry-failed" => retry_failed = true,
            _ => rest.push(arg),
        }
    }
    Ok((filter, list, retry_failed, rest))
}

fn main() -> ExitCode {
    let parsed = parse_harness_args(std::env::args().skip(1));
    let (mut filter, list, retry_failed, rest) = match parsed {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = registry();
    if list {
        for job in &jobs {
            println!("{}", job.id);
        }
        return ExitCode::SUCCESS;
    }
    if retry_failed {
        let prev = std::fs::read_to_string(MANIFEST_PATH)
            .map_err(|e| e.to_string())
            .and_then(|t| Manifest::from_json(&t));
        match prev {
            Ok(prev) => {
                let failed = prev.failed_ids();
                if failed.is_empty() {
                    eprintln!("--retry-failed: previous manifest has no failed jobs; nothing to do");
                    return ExitCode::SUCCESS;
                }
                eprintln!("--retry-failed: re-running {}", failed.join(", "));
                filter.only.extend(failed);
            }
            Err(e) => {
                eprintln!("error: --retry-failed could not read {MANIFEST_PATH}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let unknown = filter.unknown_ids(&jobs);
    if !unknown.is_empty() {
        eprintln!("error: unknown job id(s): {} (see --list)", unknown.join(", "));
        return ExitCode::FAILURE;
    }

    let profile = RunOpts::parse_from(rest).profile();
    eprintln!("profile: {} (data 1/{}, {} reps)", profile.hw.name, profile.data_div, profile.reps);

    // Deterministic failure hook for the CI negative test: the job named in
    // ALL_FIGURES_FAIL panics before its experiment runs.
    let injected_failure = std::env::var("ALL_FIGURES_FAIL").ok();

    let mut manifest = Manifest::default();
    for job in &jobs {
        if !filter.selects(job.id) {
            manifest.entries.push(ManifestEntry {
                id: job.id.to_string(),
                status: JobStatus::Skipped,
                seconds: 0.0,
                error: None,
                outputs: Vec::new(),
            });
            continue;
        }
        eprintln!("[{}] running...", job.id);
        let started = WallClock::now();
        let run = job.run;
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            if injected_failure.as_deref() == Some(job.id) {
                panic!("injected failure via ALL_FIGURES_FAIL={}", job.id);
            }
            run(&profile)
        }));
        let seconds = started.elapsed().as_secs_f64();
        match outcome {
            Ok(figures) => {
                let outputs: Vec<String> = figures.iter().map(|f| f.id.clone()).collect();
                for figure in &figures {
                    figure.emit();
                }
                eprintln!("[{}] ok ({seconds:.2}s)", job.id);
                manifest.entries.push(ManifestEntry {
                    id: job.id.to_string(),
                    status: JobStatus::Ok,
                    seconds,
                    error: None,
                    outputs,
                });
            }
            Err(cause) => {
                let message = if let Some(s) = cause.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = cause.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                eprintln!("[{}] FAILED ({seconds:.2}s): {message}", job.id);
                manifest.entries.push(ManifestEntry {
                    id: job.id.to_string(),
                    status: JobStatus::Failed,
                    seconds,
                    error: Some(message),
                    outputs: Vec::new(),
                });
            }
        }
    }

    let (n_ok, n_failed, n_skipped) = (
        manifest.count(JobStatus::Ok),
        manifest.count(JobStatus::Failed),
        manifest.count(JobStatus::Skipped),
    );
    let write = std::fs::create_dir_all("target/figures")
        .map_err(|e| e.to_string())
        .and_then(|()| std::fs::write(MANIFEST_PATH, manifest.to_json()).map_err(|e| e.to_string()));
    if let Err(e) = write {
        eprintln!("error: could not write {MANIFEST_PATH}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("manifest: {MANIFEST_PATH} ({n_ok} ok, {n_failed} failed, {n_skipped} skipped)");
    if n_failed > 0 {
        eprintln!("failed jobs: {}", manifest.failed_ids().join(", "));
        eprintln!("re-run just these with: all_figures --retry-failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
