//! Fig 1: SGXv1-optimized vs state-of-the-art joins inside SGXv2.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig01_intro;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig01_intro(&profile).emit();
}
