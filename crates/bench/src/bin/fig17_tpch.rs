//! Fig 17: TPC-H Q3/Q10/Q12/Q19.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig17_tpch;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig17_tpch(&profile).emit();
}
