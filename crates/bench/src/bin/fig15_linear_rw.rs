//! Fig 15: linear read/write kernels.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig15_linear;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig15_linear(&profile).emit();
}
