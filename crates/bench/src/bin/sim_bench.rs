//! sim_bench — first-class simulator-throughput suite.
//!
//! Measures how fast the *host* grinds through simulated work
//! (events/sec, where an event is a simulated load/store/ALU/vector op)
//! on the kernels the hot-path rewrite targets:
//!
//! * `join-smoke` / `scan-smoke` — the exact legacy `bench_events`
//!   workloads, kept under the same row names so the `BENCH_*.json`
//!   trajectory stays comparable across PRs;
//! * `pht-build` / `pht-probe` — PHT join shapes dominated by the build
//!   (random RMW) and probe (stream + random read) phases respectively;
//! * `radix-join` — the RHO radix join (partitioning streams);
//! * `linear-scan` — a parallel 64-bit linear read;
//! * `random-access` — an LCG-driven random-store microloop (the
//!   `Core::access` path with no stream component);
//! * `tpch-q3` — the TPC-H Q3 plan at SF 0.01 (mixed operator soup);
//! * `ext-sort` — external merge sort (run formation + k-way merge with
//!   charged spill/reload);
//! * `dict-scan` / `rle-scan` — decompress-inside-enclave scan kernels
//!   over dictionary- and RLE-coded columns;
//! * `storage-path` — the sealed storage data path (GCM unseal + filter
//!   + grouped aggregate over a dict-coded column).
//!
//! Every row is warmup + median-of-N (N ≥ 5) with a real `±` spread from
//! the min–max of the repetitions (see `sgx_bench_core::simbench`).
//! Simulated results stay bit-deterministic; only wall-clock varies per
//! host, which is why these numbers live in checked-in `BENCH_pr<N>.json`
//! trajectory files rather than tests.
//!
//! Usage:
//!   sim_bench [--out FILE] [--commit ID] [--reps N] [--filter SUB]
//!             [--oracle]
//!   sim_bench --trend OLD.json NEW.json [--warn-only]
//!
//! `--oracle` forces every stream touch down the per-line slow path
//! (`Machine::force_stream_oracle`), so fast-path speedups can be
//! measured directly. `--trend` is the CI perf-trend gate: it compares
//! the watched rows (`join-smoke`, `scan-smoke`) of two trajectory files
//! and fails on a >30 % events/sec regression (`--warn-only` downgrades
//! that to a warning for 1-CPU or otherwise unsuitable hosts).

use sgx_bench_core::simbench::{compare_trend, document, load_rows, sample, BenchRow};
use sgx_joins::common::JoinConfig;
use sgx_joins::data::{gen_fk_relation, gen_pk_relation};
use sgx_joins::pht::pht_join;
use sgx_joins::rho::rho_join;
use sgx_bench_core::sgx_microbench::random_write::lcg_next;
use sgx_scans::linear::{linear_read, LinearConfig, Width};
use sgx_sim::config::scaled_profile;
use sgx_sim::counters::Counters;
use sgx_sim::machine::Machine;
use sgx_sim::mem::Setting;
use std::path::PathBuf;
// sgx-lint: allow(nondeterminism) host wall-clock IS the metric here — events/sec of the simulator itself
use std::time::Instant;

/// Simulated micro-operations in a counter delta.
fn events(d: &Counters) -> u64 {
    d.loads + d.stores + d.alu_ops + d.vec_ops
}

/// Fresh enclave-mode machine at the /16-scaled profile, optionally
/// forced onto the stream slow path.
fn machine(oracle: bool) -> Machine {
    let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
    m.force_stream_oracle(oracle);
    m
}

/// Time `f` on `m` and return events/sec of the simulated work it did.
fn rate(m: &mut Machine, f: impl FnOnce(&mut Machine)) -> f64 {
    let before = m.counters().clone();
    // sgx-lint: allow(nondeterminism) timing the host's simulation rate is the benchmark
    let t0 = Instant::now();
    f(m);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    events(&m.counters().delta(&before)) as f64 / secs
}

fn join_smoke(oracle: bool) -> f64 {
    let mut m = machine(oracle);
    let r = gen_pk_relation(&mut m, 1 << 14, 0xC0FFEE);
    let s = gen_fk_relation(&mut m, 1 << 16, 1 << 14, 0xBEEF);
    let cfg = JoinConfig::new(2);
    rate(&mut m, |m| {
        std::hint::black_box(pht_join(m, &r, &s, &cfg));
    })
}

fn scan_smoke(oracle: bool) -> f64 {
    let mut m = machine(oracle);
    let v = m.alloc::<u64>(1 << 18);
    let cfg = LinearConfig::new(2).with_warmup(0).with_repeats(2);
    rate(&mut m, |m| {
        std::hint::black_box(linear_read(m, &v, Width::Bits64, &cfg));
    })
}

fn pht_build(oracle: bool) -> f64 {
    // Build-dominated shape: the build side outweighs the probe side 8:1,
    // so the latched random-RMW insert path sets the rate.
    let mut m = machine(oracle);
    let r = gen_pk_relation(&mut m, 1 << 17, 0xC0FFEE);
    let s = gen_fk_relation(&mut m, 1 << 14, 1 << 17, 0xBEEF);
    let cfg = JoinConfig::new(2);
    rate(&mut m, |m| {
        std::hint::black_box(pht_join(m, &r, &s, &cfg));
    })
}

fn pht_probe(oracle: bool) -> f64 {
    // Probe-dominated shape: a small table probed by a 64x larger outer
    // relation (stream reads + random table lookups).
    let mut m = machine(oracle);
    let r = gen_pk_relation(&mut m, 1 << 12, 0xC0FFEE);
    let s = gen_fk_relation(&mut m, 1 << 18, 1 << 12, 0xBEEF);
    let cfg = JoinConfig::new(2);
    rate(&mut m, |m| {
        std::hint::black_box(pht_join(m, &r, &s, &cfg));
    })
}

fn radix_join(oracle: bool) -> f64 {
    let mut m = machine(oracle);
    let r = gen_pk_relation(&mut m, 1 << 14, 0xC0FFEE);
    let s = gen_fk_relation(&mut m, 1 << 16, 1 << 14, 0xBEEF);
    let cfg = JoinConfig::new(2).with_radix_bits(8).with_optimization(true);
    rate(&mut m, |m| {
        std::hint::black_box(rho_join(m, &r, &s, &cfg));
    })
}

fn linear_scan(oracle: bool) -> f64 {
    // 8 MB — far beyond the scaled L3, so the stream fast path resolves
    // DRAM fills for most lines.
    let mut m = machine(oracle);
    let v = m.alloc::<u64>(1 << 20);
    let cfg = LinearConfig::new(2).with_warmup(0).with_repeats(2);
    rate(&mut m, |m| {
        std::hint::black_box(linear_read(m, &v, Width::Bits64, &cfg));
    })
}

fn random_access(oracle: bool) -> f64 {
    // LCG-driven independent stores over a 512 KB array: pure
    // `Core::access` random path, no stream component.
    let mut m = machine(oracle);
    let n = 1usize << 16;
    let mut v = m.alloc::<u64>(n);
    rate(&mut m, |m| {
        m.run(|c| {
            let mut x = 0x5EEDu64 | 1;
            for i in 0..(1u64 << 18) {
                x = lcg_next(x);
                v.set(c, (x >> 16) as usize % n, i);
            }
        });
    })
}

fn tpch_q3(oracle: bool) -> f64 {
    let mut m = machine(oracle);
    let db = sgx_tpch::gen::generate(&mut m, 0.01, 0x7C3);
    let cfg = sgx_tpch::queries::QueryConfig::new(2);
    rate(&mut m, |m| {
        std::hint::black_box(sgx_tpch::queries::q3(m, &db, &cfg));
    })
}

fn ext_sort(oracle: bool) -> f64 {
    // ~2 MB of SortRows against the /16-scaled L3: several spilled runs,
    // so both run formation and the k-way merge are on the clock.
    let mut m = machine(oracle);
    let n = 1usize << 17;
    let mut v = m.alloc::<sgx_tpch::SortRow>(n);
    let mut x = 0x5EEDu64 | 1;
    for i in 0..n {
        x = lcg_next(x);
        v.poke(i, sgx_tpch::SortRow { key: x, tag: i as u32 });
    }
    rate(&mut m, |m| {
        std::hint::black_box(sgx_tpch::external_merge_sort(m, &[0, 1], &v, n));
    })
}

fn dict_scan(oracle: bool) -> f64 {
    let mut m = machine(oracle);
    let values = sgx_tpch::storage::clustered_column(1 << 18, 0xD1C7);
    let col = sgx_tpch::DictColumn::encode(&mut m, &values);
    rate(&mut m, |m| {
        m.run(|c| {
            let mut acc = 0u64;
            col.scan(c, 0..col.len(), &mut |_c, _i, x| acc = acc.wrapping_add(x as u64));
            std::hint::black_box(acc);
        });
    })
}

fn rle_scan(oracle: bool) -> f64 {
    let mut m = machine(oracle);
    let values = sgx_tpch::storage::clustered_column(1 << 18, 0x41E5);
    let col = sgx_tpch::RleColumn::encode(&mut m, &values);
    rate(&mut m, |m| {
        m.run(|c| {
            let mut acc = 0u64;
            col.scan_runs(c, &mut |_c, v, l| acc = acc.wrapping_add(v as u64 * l as u64));
            std::hint::black_box(acc);
        });
    })
}

fn storage_path(oracle: bool) -> f64 {
    // Unseal (GCM-charged stream) + filter + group-count, dict layout.
    let mut m = machine(oracle);
    let values = sgx_tpch::storage::clustered_column(1 << 18, 0x5EA1);
    let col = sgx_tpch::seal_column(&mut m, &values, sgx_tpch::StorageFormat::Dict);
    rate(&mut m, |m| {
        std::hint::black_box(sgx_tpch::storage_path_query(m, &[0, 1], &col, 128, 64));
    })
}

/// The suite, in reporting order.
const KERNELS: &[(&str, fn(bool) -> f64)] = &[
    ("join-smoke", join_smoke),
    ("scan-smoke", scan_smoke),
    ("pht-build", pht_build),
    ("pht-probe", pht_probe),
    ("radix-join", radix_join),
    ("linear-scan", linear_scan),
    ("random-access", random_access),
    ("tpch-q3", tpch_q3),
    ("ext-sort", ext_sort),
    ("dict-scan", dict_scan),
    ("rle-scan", rle_scan),
    ("storage-path", storage_path),
];

/// Rows the CI perf-trend gate watches across PRs.
const WATCHED: &[&str] = &["join-smoke", "scan-smoke"];
/// Allowed events/sec drop before the trend gate trips.
const ALLOWED_DROP: f64 = 0.30;

fn run_trend(old_path: &str, new_path: &str, warn_only: bool) -> ! {
    let load = |p: &str| -> Vec<BenchRow> {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("sim_bench: read {p}: {e}");
            std::process::exit(2);
        });
        load_rows(&text).unwrap_or_else(|e| {
            eprintln!("sim_bench: parse {p}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    let problems = compare_trend(&old, &new, WATCHED, ALLOWED_DROP);
    if problems.is_empty() {
        eprintln!("sim_bench: trend ok ({old_path} -> {new_path})");
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("sim_bench: perf-trend regression: {p}");
    }
    if warn_only {
        eprintln!(
            "sim_bench: WARNING ONLY — host unsuitable for trend enforcement (e.g. 1 CPU); \
             re-measure {new_path} on the trajectory's host class"
        );
        std::process::exit(0);
    }
    std::process::exit(1);
}

fn main() {
    let mut out_path: Option<PathBuf> = None;
    let mut commit = "worktree".to_string();
    let mut reps = 5usize;
    let mut filter: Option<String> = None;
    let mut oracle = false;
    let mut warn_only = false;
    let mut trend: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().map(PathBuf::from),
            "--commit" => {
                if let Some(c) = args.next() {
                    commit = c;
                }
            }
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("sim_bench: --reps needs a number");
                    std::process::exit(2);
                });
            }
            "--filter" => filter = args.next(),
            "--oracle" => oracle = true,
            "--warn-only" => warn_only = true,
            "--trend" => {
                let (Some(o), Some(n)) = (args.next(), args.next()) else {
                    eprintln!("sim_bench: --trend needs OLD.json NEW.json");
                    std::process::exit(2);
                };
                trend = Some((o, n));
            }
            other => {
                eprintln!("sim_bench: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some((o, n)) = trend {
        run_trend(&o, &n, warn_only);
    }

    let mut rows: Vec<BenchRow> = Vec::new();
    for (name, kernel) in KERNELS {
        if let Some(f) = &filter {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        let s = sample(1, reps, || kernel(oracle));
        eprintln!(
            "sim_bench: {name:<14} {:>14.1} events/sec  (min {:.1}, max {:.1}, N={reps}{})",
            s.median,
            s.min,
            s.max,
            if oracle { ", oracle" } else { "" }
        );
        rows.push(BenchRow {
            name: name.to_string(),
            value: s.median,
            range: s.range(),
            unit: "events/sec".into(),
        });
    }

    if rows.is_empty() {
        // A typo'd --filter would otherwise emit an empty document that
        // downstream tooling happily records as "measured nothing, fine".
        eprintln!(
            "sim_bench: --filter {:?} matched no kernel (have: {})",
            filter.as_deref().unwrap_or(""),
            KERNELS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    }

    let doc = document(&commit, "sim_bench hot-path suite", &rows);
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, doc.pretty() + "\n") {
                eprintln!("sim_bench: write {}: {e}", p.display());
                std::process::exit(1);
            }
            eprintln!("sim_bench: wrote {}", p.display());
        }
        None => println!("{}", doc.pretty()),
    }
}
