//! Fig 13: scan thread scaling.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig13_scan_scaling;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig13_scan_scaling(&profile).emit();
}
