//! Reproduction extensions: Zipf-skewed joins, grouped aggregation, and
//! dual-socket EPC scans.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::{
    ablation_radix_bits, ablation_swwcb, ext_aggregation, ext_dual_socket_scan,
    ext_packed_scan, ext_skew,
};
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    ext_skew(&profile).emit();
    ext_aggregation(&profile).emit();
    ext_dual_socket_scan(&profile).emit();
    ext_packed_scan(&profile).emit();
    ablation_swwcb(&profile).emit();
    ablation_radix_bits(&profile).emit();
}
