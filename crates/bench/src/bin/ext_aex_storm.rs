//! Fault-injection extension: join + scan throughput under deterministic
//! AEX interrupt storms and transient OCALL failures.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::ext_aex_storm;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    ext_aex_storm(&profile).emit();
}
