//! Extension: CrkJoin vs RHO on an SGXv1-style EPC.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::sgxv1_ablation;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    sgxv1_ablation(&profile).emit();
}
