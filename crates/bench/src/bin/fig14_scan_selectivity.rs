//! Fig 14: scan write-rate sweep.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig14_selectivity;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig14_selectivity(&profile).emit();
}
