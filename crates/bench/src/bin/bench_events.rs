//! Perf-trajectory smoke: `BENCH_pr<N>.json` seeder.
//!
//! Measures three coarse host-side throughput numbers and writes them in
//! a `BENCHMARK_DATA`-style document (schema patterned on the
//! github-action-benchmark `data.js` format, minus the `window.` JS
//! wrapper):
//!
//! * `lint-workspace` — wall-clock of a full `sgx-lint` pass over
//!   `crates/` (ms);
//! * `dataflow-pass` — facts/sec of the sgx-lint dataflow engine alone
//!   (field writes, receiver/type aliases, enum defs, variant uses) over
//!   the workspace token streams;
//! * `join-smoke` — simulator events/sec while running the PHT join on a
//!   small relation pair;
//! * `scan-smoke` — simulator events/sec for a parallel linear read;
//! * `service-smoke` — queries/sec through the `sgx-serve` DES on a
//!   synthetic cost table (host-side discrete-event throughput);
//! * `service-events` — DES events/sec for the same run.
//!
//! "Events" are simulated micro-operations (loads + stores + scalar +
//! vector ops), so events/sec tracks how fast the *host* grinds through
//! simulated work — the number optimization PRs move. Simulated results
//! stay bit-deterministic; only the wall-clock side varies per host, which
//! is why these numbers live in a checked-in trajectory file rather than
//! a test.
//!
//! Usage: `cargo run --release -p bench --bin bench_events -- [--out FILE]
//! [--commit ID]` (default `--out` is stdout).

use sgx_bench_core::json::Value;
use sgx_joins::common::JoinConfig;
use sgx_joins::data::{gen_fk_relation, gen_pk_relation};
use sgx_joins::pht::pht_join;
use sgx_scans::linear::{linear_read, LinearConfig, Width};
use sgx_sim::config::scaled_profile;
use sgx_sim::counters::Counters;
use sgx_sim::machine::Machine;
use sgx_sim::mem::Setting;
use std::path::PathBuf;
// sgx-lint: allow(nondeterminism) host wall-clock IS the metric here — events/sec of the simulator itself
use std::time::Instant;

/// Simulated micro-operations in a counter delta.
fn events(d: &Counters) -> u64 {
    d.loads + d.stores + d.alu_ops + d.vec_ops
}

struct BenchRow {
    name: &'static str,
    value: f64,
    unit: &'static str,
}

fn main() {
    let mut out_path: Option<PathBuf> = None;
    let mut commit = "worktree".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().map(PathBuf::from),
            "--commit" => {
                if let Some(c) = args.next() {
                    commit = c;
                }
            }
            other => {
                eprintln!("bench_events: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<BenchRow> = Vec::new();

    // --- sgx-lint wall-clock over the workspace sources.
    // sgx-lint: allow(nondeterminism) timing the lint pass is the benchmark
    let t0 = Instant::now();
    let reports = sgx_lint::analyze_paths(&[PathBuf::from("crates")]);
    let lint_ms = t0.elapsed().as_secs_f64() * 1e3;
    let files = reports.len();
    eprintln!("bench_events: lint pass over {files} files in {lint_ms:.1} ms");
    rows.push(BenchRow { name: "lint-workspace", value: lint_ms, unit: "ms" });

    // --- dataflow pass: fact-extraction rate of the lint's intraprocedural
    // dataflow engine over the workspace token streams (tokenization is
    // excluded — this isolates the pass the semantic rules lean on).
    let sources: Vec<String> = sgx_lint::collect_rust_files(&PathBuf::from("crates"))
        .into_iter()
        .filter_map(|p| std::fs::read_to_string(p).ok())
        .collect();
    let lexed: Vec<_> = sources.iter().map(|s| sgx_lint::tokenizer::tokenize(s)).collect();
    // sgx-lint: allow(nondeterminism) timing the dataflow pass is the benchmark
    let t0 = Instant::now();
    let mut facts = 0u64;
    for lx in &lexed {
        let toks = &lx.tokens;
        let span = (0, toks.len());
        facts += sgx_lint::dataflow::field_writes(toks, span).len() as u64;
        facts += sgx_lint::dataflow::receiver_aliases(toks, span).len() as u64;
        facts += sgx_lint::dataflow::type_aliases(toks).len() as u64;
        facts += sgx_lint::dataflow::parse_enums(toks).len() as u64;
        facts += sgx_lint::dataflow::variant_uses(toks).len() as u64;
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    eprintln!(
        "bench_events: dataflow pass — {facts} facts from {} files in {:.1} ms",
        lexed.len(),
        secs * 1e3
    );
    rows.push(BenchRow { name: "dataflow-pass", value: facts as f64 / secs, unit: "events/sec" });

    // --- PHT join smoke: events/sec at a small, fixed scale.
    let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
    let r = gen_pk_relation(&mut m, 1 << 14, 0xC0FFEE);
    let s = gen_fk_relation(&mut m, 1 << 16, 1 << 14, 0xBEEF);
    let cfg = JoinConfig::new(2);
    let before = m.counters().clone();
    // sgx-lint: allow(nondeterminism) timing the host's simulation rate is the benchmark
    let t0 = Instant::now();
    let stats = pht_join(&mut m, &r, &s, &cfg);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let ev = events(&m.counters().delta(&before));
    eprintln!(
        "bench_events: join smoke — {} matches, {ev} events in {:.1} ms",
        stats.matches,
        secs * 1e3
    );
    rows.push(BenchRow { name: "join-smoke", value: ev as f64 / secs, unit: "events/sec" });

    // --- linear-scan smoke: events/sec over a parallel 64-bit read.
    let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
    let v = m.alloc::<u64>(1 << 18);
    let cfg = LinearConfig::new(2).with_warmup(0).with_repeats(2);
    let before = m.counters().clone();
    // sgx-lint: allow(nondeterminism) timing the host's simulation rate is the benchmark
    let t0 = Instant::now();
    let cycles = linear_read(&mut m, &v, Width::Bits64, &cfg);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let ev = events(&m.counters().delta(&before));
    eprintln!("bench_events: scan smoke — {cycles:.0} sim cycles, {ev} events in {:.1} ms", secs * 1e3);
    rows.push(BenchRow { name: "scan-smoke", value: ev as f64 / secs, unit: "events/sec" });

    // --- service smoke: DES throughput on a synthetic cost table (no
    // machine calibration — this measures the event loop itself).
    let costs = sgx_serve::CostTable::synthetic(64);
    let m = costs.mean_total(sgx_serve::PlanVariant::Normal);
    let mut cfg = sgx_serve::ServiceConfig::new(0xBE7C);
    cfg.sockets = 2;
    cfg.horizon_cycles = (m * 2000.0) as u64;
    cfg.faults = Some(sgx_sim::OcallFaults {
        failure_prob: 0.1,
        max_retries: 3,
        backoff_cycles: m * 0.02,
    });
    let tenants = vec![
        sgx_serve::TenantSpec {
            name: "interactive".into(),
            sessions: 64,
            arrival: sgx_serve::Arrival::Closed { think_cycles: (m * 8.0) as u64 },
            mix: vec![(sgx_tpch::Query::Q12, 3), (sgx_tpch::Query::Q19, 1)],
            deadline_cycles: (m * 40.0) as u64,
        },
        sgx_serve::TenantSpec {
            name: "analytics".into(),
            sessions: 32,
            arrival: sgx_serve::Arrival::Open { mean_gap_cycles: (m * 12.0) as u64 },
            mix: vec![(sgx_tpch::Query::Q3, 1), (sgx_tpch::Query::Q10, 1)],
            deadline_cycles: (m * 300.0) as u64,
        },
    ];
    // sgx-lint: allow(nondeterminism) timing the host's DES rate is the benchmark
    let t0 = Instant::now();
    let out = sgx_serve::run_service(&cfg, &tenants, &costs);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    if let Err(e) = out.reconcile() {
        eprintln!("bench_events: service smoke failed to reconcile: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "bench_events: service smoke — {} queries, {} DES events in {:.1} ms",
        out.total.submitted,
        out.events_processed,
        secs * 1e3
    );
    rows.push(BenchRow {
        name: "service-smoke",
        value: out.total.submitted as f64 / secs,
        unit: "queries/sec",
    });
    rows.push(BenchRow {
        name: "service-events",
        value: out.events_processed as f64 / secs,
        unit: "events/sec",
    });

    let doc = document(&commit, &rows);
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, doc.pretty() + "\n") {
                eprintln!("bench_events: write {}: {e}", p.display());
                std::process::exit(1);
            }
            eprintln!("bench_events: wrote {}", p.display());
        }
        None => println!("{}", doc.pretty()),
    }
}

/// Assemble the `BENCHMARK_DATA`-style document.
fn document(commit: &str, rows: &[BenchRow]) -> Value {
    let benches: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("name".into(), Value::Str(r.name.into())),
                // One-shot smoke: no distribution to report yet; PRs that
                // add repetitions can fill a real spread in.
                ("value".into(), Value::Num((r.value * 10.0).round() / 10.0)),
                ("range".into(), Value::Str("± 0".into())),
                ("unit".into(), Value::Str(r.unit.into())),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("repoUrl".into(), Value::Str("https://example.invalid/sgxv2-olap-bench".into())),
        (
            "entries".into(),
            Value::Obj(vec![(
                "Rust Benchmark".into(),
                Value::Arr(vec![Value::Obj(vec![
                    (
                        "commit".into(),
                        Value::Obj(vec![
                            ("id".into(), Value::Str(commit.into())),
                            ("message".into(), Value::Str("charge-integrity dataflow lint PR smoke".into())),
                        ]),
                    ),
                    ("tool".into(), Value::Str("cargo".into())),
                    ("benches".into(), Value::Arr(benches)),
                ])]),
            )]),
        ),
    ])
}
