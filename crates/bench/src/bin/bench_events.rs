//! Perf-trajectory smoke: `BENCH_pr<N>.json` seeder.
//!
//! Measures coarse host-side throughput numbers and writes them in a
//! `BENCHMARK_DATA`-style document (schema patterned on the
//! github-action-benchmark `data.js` format, minus the `window.` JS
//! wrapper):
//!
//! * `lint-workspace` — wall-clock of a full `sgx-lint` pass over
//!   `crates/` (ms);
//! * `dataflow-pass` — facts/sec of the sgx-lint dataflow engine alone
//!   (field writes, receiver/type aliases, enum defs, variant uses) over
//!   the workspace token streams;
//! * `join-smoke` — simulator events/sec while running the PHT join on a
//!   small relation pair;
//! * `scan-smoke` — simulator events/sec for a parallel linear read;
//! * `service-smoke` — queries/sec through the `sgx-serve` DES on a
//!   synthetic cost table (host-side discrete-event throughput);
//! * `service-events` — DES events/sec for the same run.
//!
//! "Events" are simulated micro-operations (loads + stores + scalar +
//! vector ops), so events/sec tracks how fast the *host* grinds through
//! simulated work — the number optimization PRs move. Every row is one
//! warmup run plus median-of-N (default N = 5) with the real min–max
//! spread in the `range` field (`sgx_bench_core::simbench::sample`);
//! simulated results stay bit-deterministic, only the wall-clock side
//! varies per host, which is why these numbers live in a checked-in
//! trajectory file rather than a test. The deeper per-kernel suite lives
//! in `sim_bench`; this bin stays the cheap cross-layer smoke whose row
//! names (`join-smoke`, `scan-smoke`) the CI trend gate watches.
//!
//! Usage: `cargo run --release -p bench --bin bench_events -- [--out FILE]
//! [--commit ID] [--reps N]` (default `--out` is stdout).

use sgx_bench_core::simbench::{document, sample, BenchRow};
use sgx_joins::common::JoinConfig;
use sgx_joins::data::{gen_fk_relation, gen_pk_relation};
use sgx_joins::pht::pht_join;
use sgx_scans::linear::{linear_read, LinearConfig, Width};
use sgx_sim::config::scaled_profile;
use sgx_sim::counters::Counters;
use sgx_sim::machine::Machine;
use sgx_sim::mem::Setting;
use std::path::PathBuf;
// sgx-lint: allow(nondeterminism) host wall-clock IS the metric here — events/sec of the simulator itself
use std::time::Instant;

/// Simulated micro-operations in a counter delta.
fn events(d: &Counters) -> u64 {
    d.loads + d.stores + d.alu_ops + d.vec_ops
}

/// Time one run of `f` on a machine and return events/sec.
fn rate(m: &mut Machine, f: impl FnOnce(&mut Machine)) -> f64 {
    let before = m.counters().clone();
    // sgx-lint: allow(nondeterminism) timing the host's simulation rate is the benchmark
    let t0 = Instant::now();
    f(m);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    events(&m.counters().delta(&before)) as f64 / secs
}

/// One lint pass over the workspace sources, in milliseconds.
fn lint_workspace_ms() -> f64 {
    // sgx-lint: allow(nondeterminism) timing the lint pass is the benchmark
    let t0 = Instant::now();
    let reports = sgx_lint::analyze_paths(&[PathBuf::from("crates")]);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(reports.len());
    ms
}

/// Fact-extraction rate of the lint's intraprocedural dataflow engine
/// over pre-tokenized workspace sources (tokenization excluded — this
/// isolates the pass the semantic rules lean on).
fn dataflow_rate(lexed: &[sgx_lint::tokenizer::Lexed]) -> f64 {
    // sgx-lint: allow(nondeterminism) timing the dataflow pass is the benchmark
    let t0 = Instant::now();
    let mut facts = 0u64;
    for lx in lexed {
        let toks = &lx.tokens;
        let span = (0, toks.len());
        facts += sgx_lint::dataflow::field_writes(toks, span).len() as u64;
        facts += sgx_lint::dataflow::receiver_aliases(toks, span).len() as u64;
        facts += sgx_lint::dataflow::type_aliases(toks).len() as u64;
        facts += sgx_lint::dataflow::parse_enums(toks).len() as u64;
        facts += sgx_lint::dataflow::variant_uses(toks).len() as u64;
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    facts as f64 / secs
}

/// PHT join smoke: events/sec at a small, fixed scale (fresh machine and
/// relations per repetition, so every run replays identical sim work).
fn join_smoke() -> f64 {
    let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
    let r = gen_pk_relation(&mut m, 1 << 14, 0xC0FFEE);
    let s = gen_fk_relation(&mut m, 1 << 16, 1 << 14, 0xBEEF);
    let cfg = JoinConfig::new(2);
    rate(&mut m, |m| {
        std::hint::black_box(pht_join(m, &r, &s, &cfg));
    })
}

/// Linear-scan smoke: events/sec over a parallel 64-bit read.
fn scan_smoke() -> f64 {
    let mut m = Machine::new(scaled_profile(), Setting::SgxDataInEnclave);
    let v = m.alloc::<u64>(1 << 18);
    let cfg = LinearConfig::new(2).with_warmup(0).with_repeats(2);
    rate(&mut m, |m| {
        std::hint::black_box(linear_read(m, &v, Width::Bits64, &cfg));
    })
}

/// One DES service run on a synthetic cost table; returns
/// (queries/sec, DES events/sec). No machine calibration — this measures
/// the event loop itself.
fn service_smoke() -> (f64, f64) {
    let costs = sgx_serve::CostTable::synthetic(64);
    let m = costs.mean_total(sgx_serve::PlanVariant::Normal);
    let mut cfg = sgx_serve::ServiceConfig::new(0xBE7C);
    cfg.sockets = 2;
    cfg.horizon_cycles = (m * 2000.0) as u64;
    cfg.faults = Some(sgx_sim::OcallFaults {
        failure_prob: 0.1,
        max_retries: 3,
        backoff_cycles: m * 0.02,
    });
    let tenants = vec![
        sgx_serve::TenantSpec {
            name: "interactive".into(),
            sessions: 64,
            arrival: sgx_serve::Arrival::Closed { think_cycles: (m * 8.0) as u64 },
            mix: vec![(sgx_tpch::Query::Q12, 3), (sgx_tpch::Query::Q19, 1)],
            deadline_cycles: (m * 40.0) as u64,
        },
        sgx_serve::TenantSpec {
            name: "analytics".into(),
            sessions: 32,
            arrival: sgx_serve::Arrival::Open { mean_gap_cycles: (m * 12.0) as u64 },
            mix: vec![(sgx_tpch::Query::Q3, 1), (sgx_tpch::Query::Q10, 1)],
            deadline_cycles: (m * 300.0) as u64,
        },
    ];
    // sgx-lint: allow(nondeterminism) timing the host's DES rate is the benchmark
    let t0 = Instant::now();
    let out = sgx_serve::run_service(&cfg, &tenants, &costs);
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    if let Err(e) = out.reconcile() {
        eprintln!("bench_events: service smoke failed to reconcile: {e}");
        std::process::exit(1);
    }
    (out.total.submitted as f64 / secs, out.events_processed as f64 / secs)
}

fn main() {
    let mut out_path: Option<PathBuf> = None;
    let mut commit = "worktree".to_string();
    let mut reps = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().map(PathBuf::from),
            "--commit" => {
                if let Some(c) = args.next() {
                    commit = c;
                }
            }
            "--reps" => {
                reps = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bench_events: --reps needs a number");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("bench_events: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<BenchRow> = Vec::new();
    let mut push = |name: &str, s: sgx_bench_core::simbench::Sample, unit: &str| {
        eprintln!(
            "bench_events: {name:<14} {:>14.1} {unit}  (min {:.1}, max {:.1}, N={reps})",
            s.median, s.min, s.max
        );
        rows.push(BenchRow { name: name.into(), value: s.median, range: s.range(), unit: unit.into() });
    };

    push("lint-workspace", sample(1, reps, lint_workspace_ms), "ms");

    let sources: Vec<String> = sgx_lint::collect_rust_files(&PathBuf::from("crates"))
        .into_iter()
        .filter_map(|p| std::fs::read_to_string(p).ok())
        .collect();
    let lexed: Vec<_> = sources.iter().map(|s| sgx_lint::tokenizer::tokenize(s)).collect();
    push("dataflow-pass", sample(1, reps, || dataflow_rate(&lexed)), "events/sec");

    push("join-smoke", sample(1, reps, join_smoke), "events/sec");
    push("scan-smoke", sample(1, reps, scan_smoke), "events/sec");

    // The two service metrics come from the same run; sample each
    // independently so the medians stay honest per metric.
    push("service-smoke", sample(1, reps, || service_smoke().0), "queries/sec");
    push("service-events", sample(1, reps, || service_smoke().1), "events/sec");

    let doc = document(&commit, "cross-layer perf smoke (median-of-N)", &rows);
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, doc.pretty() + "\n") {
                eprintln!("bench_events: write {}: {e}", p.display());
                std::process::exit(1);
            }
            eprintln!("bench_events: wrote {}", p.display());
        }
        None => println!("{}", doc.pretty()),
    }
}
