//! Fig 6: RHO phase breakdown, naive vs unrolled.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig06_rho_breakdown;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig06_rho_breakdown(&profile).emit();
}
