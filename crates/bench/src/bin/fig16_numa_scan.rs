//! Fig 16: cross-NUMA scans.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig16_numa_scan;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig16_numa_scan(&profile).emit();
}
