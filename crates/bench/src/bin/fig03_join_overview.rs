//! Fig 3: all five joins, plain CPU vs SGX.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig03_overview;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig03_overview(&profile).emit();
}
