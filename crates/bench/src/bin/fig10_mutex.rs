//! Fig 10: task queue contention, lock-free vs SDK mutex.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig10_queues;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig10_queues(&profile).emit();
}
