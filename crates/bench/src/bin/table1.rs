//! Print the simulated hardware description (paper Table 1).
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::table1;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    table1(&profile).emit();
}
