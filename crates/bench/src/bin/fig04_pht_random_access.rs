//! Fig 4: PHT single-thread relative throughput and phase breakdown.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig04_pht;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    let (left, right) = fig04_pht(&profile);
    left.emit();
    right.emit();
}
