//! Fig 7: radix histogram kernels across settings.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig07_histogram;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig07_histogram(&profile).emit();
}
