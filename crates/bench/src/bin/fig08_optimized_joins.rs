//! Fig 8: optimization effect on RHO and PHT.
//!
//! Options: `--full` (paper-exact sizes), `--reps N`, `--scale N`.

use sgx_bench_core::experiments::fig08_optimized;
use sgx_bench_core::RunOpts;

fn main() {
    let profile = RunOpts::parse().profile();
    fig08_optimized(&profile).emit();
}
