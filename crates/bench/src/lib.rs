//! Figure-regeneration binaries (`src/bin/figNN_*.rs`, one per paper
//! table/figure) and Criterion benches over the operator implementations.
//!
//! The experiment logic itself lives in `sgx_bench_core::experiments` so
//! the workspace integration tests can exercise the same code paths on a
//! tiny profile.

#![forbid(unsafe_code)]
