//! Positive: `EvKind::Cancel` is enqueued but the event loop only ever
//! matches it through the wildcard — a silently dropped event class the
//! counters can never reconcile.
// sgx-lint: des-module

pub enum EvKind {
    Arrive,
    Finish,
    Cancel,
}

pub fn seed_queue(q: &mut Vec<EvKind>) {
    q.push(EvKind::Arrive);
    q.push(EvKind::Cancel);
}

pub fn step(ev: EvKind) -> u64 {
    match ev {
        EvKind::Arrive => 1,
        _ => 0,
    }
}
