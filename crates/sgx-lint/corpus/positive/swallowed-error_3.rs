// Bare `.ok();` on a fallible channel send: a full queue drops the
// partition silently and the join undercounts matches.
pub fn push_partition(tx: &Sender<Partition>, part: Partition) {
    tx.send(part).ok();
}
