//! Positive: method-call syntax — the tainted local flows into `self.fold`
//! whose first non-receiver parameter is iterated. The `self` shift must
//! not misalign the argument positions.

pub struct Probe;

impl Probe {
    pub fn run(&self, v: &SimVec<u64>) -> u64 {
        // sgx-lint: allow(untracked-access) corpus case isolates the cross-function flow
        let rows = v.as_slice_untracked();
        self.fold(rows)
    }

    fn fold(&self, rows: &[u64]) -> u64 {
        let mut acc = 0u64;
        for r in rows.iter() {
            acc ^= r;
        }
        acc
    }
}
