//! Positive: a slice born from the untracked escape hatch is bound to a
//! local and handed to a helper that indexes it — the helper's reads
//! bypass the SimVec event stream across the call edge.

pub fn build(v: &SimVec<u64>) -> u64 {
    // sgx-lint: allow(untracked-access) corpus case isolates the cross-function flow
    let keys = v.as_slice_untracked();
    helper(keys)
}

fn helper(keys: &[u64]) -> u64 {
    keys[0]
}
