// Discarded parse: a malformed radix-bits knob is silently ignored and
// the join runs with the default, hiding the config error.
pub fn apply_radix_bits(cfg: &mut JoinConfig, arg: &str) {
    let _ = arg.parse::<u32>().map(|b| cfg.radix_bits = b);
}
