//! Positive: a provenance tag two lines up does not count — the tag must
//! sit on the constant's line or directly above it to survive edits.

// sgx-lint: calibration-file — corpus case
// paper: §4.4 transition costs
// (see the warm-transition microbenchmark)
pub const TRANSITION_CYCLES: f64 = 10_000.0;
