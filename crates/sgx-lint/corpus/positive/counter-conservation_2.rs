//! Positive: `spills` is charged, but the only read is bookkeeping inside
//! `impl Counters` — no figure or test ever attributes it.

pub struct Counters {
    pub loads: u64,
    pub spills: u64,
}

impl Counters {
    pub fn accesses(&self) -> u64 {
        self.loads + self.spills
    }
}

pub fn charge(c: &mut Counters) {
    c.loads += 1;
    c.spills += 1;
}

pub fn figure(c: &Counters) -> u64 {
    c.loads
}
