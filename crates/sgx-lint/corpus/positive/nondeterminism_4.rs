// SystemTime-derived seed: irreproducible by construction.
pub fn seed_of_day() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
