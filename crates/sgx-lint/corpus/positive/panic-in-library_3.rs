// Explicit panic! on a recoverable condition.
pub fn checked_div(a: u64, b: u64) -> u64 {
    if b == 0 {
        panic!("division by zero");
    }
    a / b
}
