// Raw-pointer arithmetic around the tracked accessors.
pub fn sum_raw(v: &[u64]) -> u64 {
    let mut total = 0u64;
    let p = v.as_ptr();
    for i in 0..v.len() {
        total += unsafe { *p.add(i) };
    }
    total
}
