//! Positive: a charge-module file whose set defines no `commit` at all —
//! every charge site is an escape by definition. `advance` hits the wall
//! clock directly and there is no choke point for it to reach.
// sgx-lint: charge-module

pub struct Clock {
    pub wall: f64,
}

pub fn advance(c: &mut Clock, dt: f64) {
    c.wall += dt;
}
