// Byte counter truncated on 32-bit targets.
pub fn index_by_bytes(bytes_read: u64, table: &[u64]) -> u64 {
    table[bytes_read as usize]
}
