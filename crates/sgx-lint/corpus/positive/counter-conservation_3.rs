//! Positive: the profiler's `CategoryCycles` ledger is conserved under
//! the same rule as `Counters`. Here `upi` is charged but only ever read
//! inside `impl CategoryCycles` itself (bookkeeping, not attribution) —
//! an unattributed bin that leaks cycles out of every phase breakdown.

pub struct CategoryCycles {
    pub mee: f64,
    pub upi: f64,
}

impl CategoryCycles {
    pub fn total(&self) -> f64 {
        self.mee + self.upi
    }
}

pub fn charge(c: &mut CategoryCycles) {
    c.mee += 4.0;
    c.upi += 9.0;
}

pub fn profile_row(c: &CategoryCycles) -> f64 {
    c.mee
}
