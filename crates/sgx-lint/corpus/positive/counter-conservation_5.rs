//! Positive: the bookkeeping read sits behind a two-hop alias chain
//! (`BinsView = Bins = CategoryCycles`); resolution follows the chain, so
//! `upi` is still only read inside the ledger's own impl — unattributed.

pub struct CategoryCycles {
    pub mee: f64,
    pub upi: f64,
}

pub type Bins = CategoryCycles;
pub type BinsView = Bins;

impl BinsView {
    pub fn total(&self) -> f64 {
        self.mee + self.upi
    }
}

pub fn charge(c: &mut CategoryCycles) {
    c.mee += 1.0;
    c.upi += 1.0;
}

pub fn figure(c: &CategoryCycles) -> f64 {
    c.mee
}
