//! Positive: `let`-chain laundering — promoted from a `seqlen[n3]`
//! robustness variant of `untracked-slice-taint_1.rs` that the rule
//! originally missed. The tainted binding is copied through a chain of
//! aliases at the call site, and the callee launders its parameter the
//! same way before indexing; the alias closure must track both.

pub fn build(v: &SimVec<u64>) -> u64 {
    // sgx-lint: allow(untracked-access) corpus case isolates the cross-function flow
    let raw = v.as_slice_untracked();
    let hop = raw;
    let keys = hop;
    helper(keys)
}

fn helper(keys: &[u64]) -> u64 {
    let view = keys;
    let cursor = view;
    cursor[0]
}
