//! Positive: the escape hatch is passed directly as a call argument and
//! the callee iterates the parameter in a for-loop.

pub fn scan(v: &SimVec<u32>) -> u64 {
    // sgx-lint: allow(untracked-access) corpus case isolates the cross-function flow
    sum(v.as_slice_untracked())
}

fn sum(xs: &[u32]) -> u64 {
    let mut total = 0u64;
    for x in xs {
        total += u64::from(*x);
    }
    total
}
