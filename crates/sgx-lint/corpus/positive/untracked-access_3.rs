// Summing a column via the raw view inside the timed region.
pub fn column_sum(col: &SimVec<u64>) -> u64 {
    col.as_slice_untracked().iter().sum()
}
