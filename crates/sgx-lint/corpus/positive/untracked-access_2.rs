// Scatter phase writing through the untracked mutable slice.
pub fn scatter(dst: &mut SimVec<Row>, rows: &[Row], cursors: &mut [usize], mask: u32) {
    let out = dst.as_mut_slice_untracked();
    for r in rows {
        let p = (r.key & mask) as usize;
        out[cursors[p]] = *r;
        cursors[p] += 1;
    }
}
