//! Positive: a pragma'd set member defines `fault_tick`, and `commit`
//! reaches it through `relay` — but `drift` charges through a helper
//! chain that never arrives at the tick, so it still leaks.

// sgx-lint: fault-tick-module

pub struct Layer {
    cycles: f64,
    pending: u64,
}

impl Layer {
    fn fault_tick(&mut self) {
        self.pending = 0;
    }

    fn relay(&mut self) {
        self.fault_tick();
    }

    pub fn commit(&mut self, n: f64) {
        self.cycles += n;
        self.relay();
    }

    fn log_only(&self) -> u64 {
        self.pending
    }

    pub fn drift(&mut self, n: f64) {
        self.cycles += n;
        self.log_only();
    }
}
