// Transmuting row layouts instead of converting.
pub fn rows_as_bytes(rows: &[u64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(rows.as_ptr() as *const u8, rows.len() * 8) }
}
