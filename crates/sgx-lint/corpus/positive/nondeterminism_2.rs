// Wall-clock timing instead of the simulator's cycle model.
pub fn measure<F: FnOnce()>(f: F) -> u128 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos()
}
