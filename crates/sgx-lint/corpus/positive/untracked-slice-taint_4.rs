//! Positive: wrapper indirection — promoted from a `wrap[d2]` robustness
//! variant of `untracked-slice-taint_1.rs` that the rule originally
//! missed. The tainted slice passes through two do-nothing forwarding
//! wrappers before the helper that actually indexes it; the taint must
//! survive every call edge of the chain.

pub fn build(v: &SimVec<u64>) -> u64 {
    // sgx-lint: allow(untracked-access) corpus case isolates the cross-function flow
    let keys = v.as_slice_untracked();
    helper_outer(keys)
}

fn helper_outer(keys: &[u64]) -> u64 {
    helper_inner(keys)
}

fn helper_inner(keys: &[u64]) -> u64 {
    helper(keys)
}

fn helper(keys: &[u64]) -> u64 {
    keys[0]
}
