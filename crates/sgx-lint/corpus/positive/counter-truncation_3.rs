// Narrowing a PMU counter before the ratio is taken loses the high half.
pub struct Sample { pub tick_counter: u64 }
pub fn ratio(s: &Sample, total: u64) -> u64 {
    let small = s.tick_counter as u32;
    small as u64 * 100 / total
}
