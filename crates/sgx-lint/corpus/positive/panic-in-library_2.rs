// expect in a library accessor.
pub fn first_row(rows: &[u32]) -> u32 {
    *rows.first().expect("rows must not be empty")
}
