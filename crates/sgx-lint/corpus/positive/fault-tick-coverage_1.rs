//! Positive: `leaky` charges cycles but never reaches `fault_tick`, so an
//! injected fault profile cannot observe that charge path.

pub struct Core {
    cycles: f64,
    pending: u64,
}

impl Core {
    fn fault_tick(&mut self) {
        self.pending = 0;
    }

    pub fn charge(&mut self, n: f64) {
        self.cycles += n;
        self.fault_tick();
    }

    pub fn leaky(&mut self, n: f64) {
        self.cycles += n;
    }
}
