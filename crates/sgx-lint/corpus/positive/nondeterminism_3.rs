use std::collections::HashMap;

// Default-hasher map whose iteration order feeds the result vector:
// RandomState makes the output order differ run to run.
pub fn group_totals(keys: &[u32]) -> Vec<(u32, u64)> {
    let mut m: HashMap<u32, u64> = HashMap::new();
    for &k in keys {
        *m.entry(k).or_default() += 1;
    }
    m.into_iter().collect()
}
