//! Positive: `stalls` is declared and even summed into a figure, but no
//! charge path ever writes it — a dead counter.

pub struct Counters {
    pub loads: u64,
    pub stalls: u64,
}

pub fn charge(c: &mut Counters) {
    c.loads += 1;
}

pub fn figure(c: &Counters) -> u64 {
    c.loads + c.stalls
}
