//! Positive: `deliver` is exempt (it is `fault_tick`'s own charge path and
//! must not recurse into the tick), but `stream` is an ordinary charge
//! path and still leaks.

pub struct Machine {
    cycles: f64,
    faults: u64,
}

impl Machine {
    fn fault_tick(&mut self) {
        self.deliver();
    }

    fn deliver(&mut self) {
        self.cycles += 40.0;
        self.faults += 1;
    }

    pub fn stream(&mut self, lines: u64) {
        self.cycles += lines as f64 * 14.3;
    }
}
