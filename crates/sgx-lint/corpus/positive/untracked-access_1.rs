// Hot-path probe loop reading the build side through the untracked slice:
// every byte here escapes the cost model.
pub fn probe_all(table: &SimVec<Row>, keys: &[u32]) -> u64 {
    let mut matches = 0u64;
    for &k in keys {
        for row in table.as_slice_untracked() {
            if row.key == k {
                matches += 1;
            }
        }
    }
    matches
}
