//! Positive: the DES draws jitter from an ambient entropy source
//! (`OsRng`) instead of its seeded stream — replays and `--jobs` shards
//! would diverge.
// sgx-lint: des-module

pub fn jitter(seed: u64) -> u64 {
    let draw = OsRng.next_u64();
    seed ^ draw
}
