//! Positive: the file opts in via the calibration pragma; the second
//! constant has no `paper:`/`uarch:` tag on its line or the line above.

// sgx-lint: calibration-file — corpus case
pub const DRAM_LATENCY: f64 = 220.0; // uarch: measured pointer-chase on the bench box

pub const MEE_FILL_LATENCY: f64 = 175.0;
