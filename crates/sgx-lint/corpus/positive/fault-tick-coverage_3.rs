//! Positive: the pragma opts this layer into the fault-tick module set,
//! but nothing in the set defines `fault_tick` — every charge path here
//! is invisible to the fault engine and must be flagged.

// sgx-lint: fault-tick-module

pub struct Numa {
    cycles: f64,
    upi_bytes: f64,
}

impl Numa {
    pub fn remote_line(&mut self, bytes: f64) {
        self.upi_bytes += bytes;
        self.cycles += bytes * 0.21;
    }
}
