// Cycle counter squeezed into 32 bits: overflows after ~1.4 s at 3 GHz.
pub fn report_cycles(cycles: u64) -> u32 {
    cycles as u32
}
