// Discarded figure write: the report silently vanishes when the target
// directory is missing or read-only.
pub fn persist(path: &std::path::Path, json: &str) {
    let _ = std::fs::write(path, json);
}
