// OS entropy in data generation: every run gets different inputs.
pub fn gen_keys(n: usize) -> Vec<u32> {
    let mut rng = rand::thread_rng();
    (0..n).map(|_| rng.random::<u32>()).collect()
}
