// unwrap on user-controlled input: a malformed config aborts the run.
pub fn parse_reps(arg: &str) -> usize {
    arg.parse().unwrap()
}
