// todo! left in a shipping code path.
pub fn merge_phase(_left: &[u32], _right: &[u32]) -> Vec<u32> {
    todo!("implement the merge phase")
}
