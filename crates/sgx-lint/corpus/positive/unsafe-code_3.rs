// unsafe fn in the public API surface.
pub unsafe fn get_unchecked_row(rows: &[u32], i: usize) -> u32 {
    *rows.get_unchecked(i)
}
