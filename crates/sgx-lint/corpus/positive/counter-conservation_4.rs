//! Positive: `spills` is charged, but its only read hides inside
//! `impl CountersAlias` — a type alias of `Counters`. Alias resolution
//! attributes that impl to the struct itself, so the read is own-impl
//! bookkeeping, not attribution: the alias cannot launder a dead counter.

pub struct Counters {
    pub loads: u64,
    pub spills: u64,
}

pub type CountersAlias = Counters;

impl CountersAlias {
    pub fn accesses(&self) -> u64 {
        self.loads + self.spills
    }
}

pub fn charge(c: &mut Counters) {
    c.loads += 1;
    c.spills += 1;
}

pub fn figure(c: &Counters) -> u64 {
    c.loads
}
