//! Positive: `leak` compound-charges `cycles` without ever reaching the
//! `commit` choke point. `resolve` performs the same kind of mutation but
//! routes through `commit`, and `apply` is `commit`'s own implementation —
//! both stay clean; only the bypass fires.
// sgx-lint: charge-module

pub struct Core {
    pub cycles: f64,
    pub pending: f64,
}

impl Core {
    pub fn commit(&mut self, n: f64) {
        self.cycles += n;
        self.apply(n);
    }

    fn apply(&mut self, n: f64) {
        self.pending -= n;
    }

    pub fn resolve(&mut self, n: f64) {
        self.cycles += n;
        self.commit(n);
    }

    pub fn leak(&mut self, n: f64) {
        self.cycles += n;
    }
}
