//! Positive: `retries` is bumped on the requeue path but no `reconcile`
//! conservation check ever reads it — an unreconciled counter that can
//! leak or double-count events undetected.
// sgx-lint: des-module

pub struct QueueCounters {
    pub done: u64,
    pub retries: u64,
}

pub struct Sim {
    pub c: QueueCounters,
}

impl Sim {
    pub fn complete(&mut self) {
        self.c.done += 1;
    }

    pub fn requeue(&mut self) {
        self.c.retries += 1;
    }

    pub fn reconcile(&self, submitted: u64) -> bool {
        self.c.done == submitted
    }
}
