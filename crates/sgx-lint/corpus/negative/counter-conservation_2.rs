//! Negative: the rule is scoped to `struct Counters` — an unrelated tally
//! struct with a write-only field is not its business.

pub struct Tally {
    pub hits: u64,
}

pub fn bump(t: &mut Tally) {
    t.hits += 1;
}
