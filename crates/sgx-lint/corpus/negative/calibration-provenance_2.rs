//! Negative: without the `calibration-file` pragma the rule does not
//! apply — ordinary code is free to use untagged literals.

pub const SEED: u64 = 42;

pub fn double(x: u64) -> u64 {
    x * 2
}
