//! Negative: every constant is tagged on its own line or the line above,
//! and the structural floor carries a reasoned allow-marker.

// sgx-lint: calibration-file — corpus case
pub const CACHE_LINE: usize = 64; // uarch: x86 line size
// paper: §3 Table 1, 48 KB L1d
pub const L1D_BYTES: usize = 48 * 1024;

pub fn sets(ways: usize) -> usize {
    // sgx-lint: allow(calibration-provenance) structural floor, not calibration
    (L1D_BYTES / (ways * CACHE_LINE)).max(1)
}
