// Counters stay u64 end to end; f64 is sanctioned for ratios.
pub fn throughput(cycles: u64, rows: u64, ghz: f64) -> f64 {
    rows as f64 / (cycles as f64 / ghz / 1e9) / 1e6
}
