//! Negative: wrapper indirection into a length-only consumer. The taint
//! hardening that follows call chains (see `positive/untracked-slice-
//! taint_4.rs`) must not turn mere pass-through into a finding — the
//! slice crosses two call edges but no element is ever read.

pub fn build(v: &SimVec<u64>) -> usize {
    // sgx-lint: allow(untracked-access) setup-phase length probe, no per-element reads
    let keys = v.as_slice_untracked();
    note_outer(keys)
}

fn note_outer(xs: &[u64]) -> usize {
    note(xs)
}

fn note(xs: &[u64]) -> usize {
    xs.len()
}
