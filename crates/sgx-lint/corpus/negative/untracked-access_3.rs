// Plain std slices are not SimVec escapes; `as_slice` on a Vec is fine.
pub fn vec_total(v: &Vec<u64>) -> u64 {
    v.as_slice().iter().sum()
}
