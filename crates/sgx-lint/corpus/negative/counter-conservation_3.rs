//! Negative: a fully conserved `CategoryCycles` — every bin is charged
//! by non-test code and surfaced outside the struct's own impl.

pub struct CategoryCycles {
    pub mee: f64,
    pub upi: f64,
}

impl CategoryCycles {
    pub fn total(&self) -> f64 {
        self.mee + self.upi
    }
}

pub fn charge(c: &mut CategoryCycles) {
    c.mee += 4.0;
    c.upi += 9.0;
}

pub fn profile_row(c: &CategoryCycles) -> [f64; 2] {
    [c.mee, c.upi]
}
