// unwrap_or / unwrap_or_else are total, not panicking.
pub fn first_or_zero(rows: &[u32]) -> u32 {
    rows.first().copied().unwrap_or(0)
}
pub fn reps_or_default(arg: Option<&str>) -> usize {
    arg.and_then(|a| a.parse().ok()).unwrap_or_else(|| 10)
}
