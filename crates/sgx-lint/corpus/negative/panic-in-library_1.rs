// Result propagation instead of unwrap.
pub fn parse_reps(arg: &str) -> Result<usize, String> {
    arg.parse().map_err(|e| format!("--reps needs an integer: {e}"))
}
