//! Negative: an ordinary borrowed slice (no escape hatch anywhere) flows
//! into a consuming helper — consumption alone is not taint.

pub fn merge(xs: &[u64]) -> u64 {
    total(xs)
}

fn total(xs: &[u64]) -> u64 {
    let mut t = 0u64;
    for x in xs {
        t += x;
    }
    t
}
