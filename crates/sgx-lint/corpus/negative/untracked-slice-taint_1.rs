//! Negative: the tainted slice reaches a helper that only takes its
//! length — no per-element access ever leaves the event stream, so the
//! taint rule must stay silent.

pub fn build(v: &SimVec<u64>) -> usize {
    // sgx-lint: allow(untracked-access) setup-phase length probe, no per-element reads
    let keys = v.as_slice_untracked();
    note(keys)
}

fn note(xs: &[u64]) -> usize {
    xs.len()
}
