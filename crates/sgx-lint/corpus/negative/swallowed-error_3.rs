// Charged-access discard: the point of `let _ = v.get(..)` is the cache
// charge, and `get` is infallible — no error exists to swallow.
pub fn touch(c: &mut Core, v: &SimVec<u64>, i: usize) {
    let _ = v.get(c, i);
}
