// Charged accessors only: every access flows through the event stream.
pub fn probe_all(c: &mut Core, table: &SimVec<Row>, keys: &SimVec<u32>) -> u64 {
    let mut matches = 0u64;
    keys.read_stream(c, 0..keys.len(), |c, _, k| {
        c.compute(1);
        if table.get(c, (k as usize) % table.len()).key == k {
            matches += 1;
        }
    });
    matches
}
