//! Negative: totality, reconciliation and seeded-only draws all hold —
//! every constructed event has an explicit arm, every incremented counter
//! is read by `reconcile`, and the generator is a pure LCG of the seed.
// sgx-lint: des-module

pub enum EvKind {
    Arrive,
    Finish,
}

pub struct QueueCounters {
    pub done: u64,
}

pub struct Sim {
    pub seed: u64,
    pub c: QueueCounters,
}

impl Sim {
    pub fn draw(&mut self) -> u64 {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.seed
    }

    pub fn enqueue(&self, q: &mut Vec<EvKind>) {
        q.push(EvKind::Arrive);
        q.push(EvKind::Finish);
    }

    pub fn step(&mut self, ev: EvKind) {
        match ev {
            EvKind::Arrive => {}
            EvKind::Finish => self.c.done += 1,
        }
    }

    pub fn reconcile(&self, submitted: u64) -> bool {
        self.c.done == submitted
    }
}
