// Charged accessor usage, fully safe.
pub fn fill(c: &mut Core, v: &mut SimVec<u64>) {
    for i in 0..v.len() {
        v.set(c, i, i as u64);
    }
}
