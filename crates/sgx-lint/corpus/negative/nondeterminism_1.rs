use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

// Seeded generator: identical seeds, identical streams.
pub fn gen_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<u32>()).collect()
}
