// A reasoned allow-marker covers a deliberate narrow cast.
pub fn pack_cycles_lo(cycles: u64) -> u32 {
    // sgx-lint: allow(counter-truncation) wire format stores the low half; high half sent separately
    cycles as u32
}
