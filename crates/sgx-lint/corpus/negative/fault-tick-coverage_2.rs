//! Negative: no `fault_tick` is defined here, so this file is outside the
//! rule's scope — charging cycles alone is not a violation.

pub struct Core {
    cycles: f64,
}

impl Core {
    pub fn charge(&mut self, n: f64) {
        self.cycles += n;
    }
}
