// Safe indexing; the word unsafe appears only in this comment and the
// string below, neither of which is code.
pub fn sum(v: &[u64]) -> u64 {
    let note = "nothing unsafe here";
    let _ = note;
    v.iter().sum()
}
