// A reasoned allow-marker makes the untracked read legitimate.
pub fn reference_sum(col: &SimVec<u64>) -> u64 {
    // sgx-lint: allow(untracked-access) uncharged reference oracle for tests
    col.as_slice_untracked().iter().sum()
}
