//! Negative: every field is both charged by non-test code and read
//! outside the struct's own impl — fully conserved.

pub struct Counters {
    pub loads: u64,
    pub stores: u64,
}

pub fn charge(c: &mut Counters) {
    c.loads += 1;
    c.stores += 1;
}

pub fn figure(c: &Counters) -> u64 {
    c.loads + c.stores
}
