//! Negative: the one charging function calls `fault_tick`, and the
//! read-only accessor charges nothing — full coverage.

pub struct Core {
    cycles: f64,
    pending: u64,
}

impl Core {
    fn fault_tick(&mut self) {
        self.pending = 0;
    }

    pub fn compute(&mut self, ops: u64) {
        self.cycles += ops as f64;
        self.fault_tick();
    }

    pub fn elapsed(&self) -> f64 {
        self.cycles
    }
}
