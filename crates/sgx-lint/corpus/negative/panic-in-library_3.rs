// unwrap inside #[cfg(test)] code is test code, not library code.
pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        let v: Option<u32> = Some(2);
        assert_eq!(super::double(v.unwrap()), 4);
        if false {
            panic!("unreached");
        }
    }
}
