// An allow-marker with a reason sanctions a vetted unsafe block.
pub fn bytes_of(rows: &[u64]) -> &[u8] {
    // sgx-lint: allow(unsafe-code) layout-checked by the test suite; no mutation, lifetime tied to input
    unsafe { std::slice::from_raw_parts(rows.as_ptr() as *const u8, rows.len() * 8) }
}
