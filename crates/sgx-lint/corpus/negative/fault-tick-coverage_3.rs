//! Negative: `charge` bumps cycles but never calls `fault_tick` directly —
//! it reaches the tick transitively through `commit`. The set-based rule
//! follows the call chain, so this layered charge path is fully covered.

// sgx-lint: fault-tick-module

pub struct Layer {
    cycles: f64,
    pending: u64,
}

impl Layer {
    fn fault_tick(&mut self) {
        self.pending = 0;
    }

    fn commit(&mut self) {
        self.fault_tick();
    }

    pub fn charge(&mut self, n: f64) {
        self.cycles += n;
        self.commit();
    }
}
