//! Negative: every compound charge either is the `commit` choke point's
//! own implementation or reaches it through an in-set call, and `reset`
//! uses plain `=` — a reset/install, not a charge.
// sgx-lint: charge-module

pub struct Core {
    pub cycles: f64,
    pub wall: f64,
}

impl Core {
    pub fn commit(&mut self, n: f64) {
        self.cycles += n;
    }

    pub fn charge(&mut self, n: f64) {
        self.wall += n;
        self.commit(n);
    }

    pub fn reset(&mut self) {
        self.cycles = 0.0;
        self.wall = 0.0;
    }
}
