// fmt::Write into a String cannot fail; discarding the unit-ish Result
// is the standard render-buffer idiom.
pub fn render_row(out: &mut String, label: &str, v: f64) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "{label}: {v:.3}");
}
