use std::collections::BTreeMap;

// Ordered map: iteration order is the key order, every run.
pub fn group_totals(keys: &[u32]) -> Vec<(u32, u64)> {
    let mut m: BTreeMap<u32, u64> = BTreeMap::new();
    for &k in keys {
        *m.entry(k).or_default() += 1;
    }
    m.into_iter().collect()
}
