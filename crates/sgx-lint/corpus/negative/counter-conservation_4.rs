//! Negative: charges arrive through a trait object and a `&mut`
//! reborrow, and every field is still surfaced outside the struct's own
//! impl — fully conserved; indirection alone is not a finding.

pub struct Counters {
    pub loads: u64,
    pub stores: u64,
}

pub trait Sink {
    fn bump(&self, c: &mut Counters);
}

pub struct Probe;

impl Sink for Probe {
    fn bump(&self, c: &mut Counters) {
        let led: &mut Counters = c;
        led.loads += 1;
        led.stores += 1;
    }
}

pub fn charge(c: &mut Counters) {
    let sink: &dyn Sink = &Probe;
    sink.bump(c);
}

pub fn figure(c: &Counters) -> u64 {
    c.loads + c.stores
}
