// `.ok()` that feeds a binding converts the Result; nothing is swallowed.
pub fn reps_from(arg: &str) -> usize {
    let parsed = arg.parse().ok();
    parsed.unwrap_or(10)
}
