//! Negative: the same leaking shape as the positive case, but the file
//! never opts into the charge-module set — the rule is pragma-scoped and
//! must stay silent on unopted code.

pub struct Core {
    pub cycles: f64,
}

impl Core {
    pub fn leak(&mut self, n: f64) {
        self.cycles += n;
    }
}
