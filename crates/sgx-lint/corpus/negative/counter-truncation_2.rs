// Narrow casts of non-counter values (indexes, keys) are fine.
pub fn bucket_of(key: u64, mask: u64) -> usize {
    (key & mask) as usize
}
