// The word Instant in comments or strings is not a finding; cycle-model
// timing via the machine is the sanctioned clock.
pub fn measure(machine: &mut Machine) -> u64 {
    let start = machine.wall_cycles();
    machine.run(|c| c.compute(100));
    let label = "not an Instant, just a string";
    let _ = label;
    machine.wall_cycles() - start
}
