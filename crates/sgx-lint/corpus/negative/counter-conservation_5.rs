//! Negative: an alias impl carries bookkeeping reads, but every bin is
//! also surfaced externally — alias resolution must not turn legitimate
//! attribution into a finding.

pub struct CategoryCycles {
    pub mee: f64,
    pub dram: f64,
}

pub type Ledger = CategoryCycles;

impl Ledger {
    pub fn total(&self) -> f64 {
        self.mee + self.dram
    }
}

pub fn charge(c: &mut CategoryCycles) {
    c.mee += 1.0;
    c.dram += 1.0;
}

pub fn figure(c: &CategoryCycles) -> f64 {
    c.mee + c.dram
}
