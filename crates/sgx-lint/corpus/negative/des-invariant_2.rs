//! Negative: an unhandled constructed event and an unreconciled counter,
//! but the file never opts into the des-module set — the rule is
//! pragma-scoped and must stay silent on unopted code.

pub enum EvKind {
    Arrive,
    Cancel,
}

pub struct QueueCounters {
    pub retries: u64,
}

pub struct Sim {
    pub c: QueueCounters,
}

impl Sim {
    pub fn requeue(&mut self, q: &mut Vec<EvKind>) {
        self.c.retries += 1;
        q.push(EvKind::Cancel);
    }

    pub fn step(&mut self, ev: EvKind) -> u64 {
        match ev {
            EvKind::Arrive => 1,
            _ => 0,
        }
    }
}
