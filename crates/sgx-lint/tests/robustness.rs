//! CLI-level guards for `sgx-lint robustness`:
//!
//! * the rendered report (text and JSON) is byte-identical across two
//!   invocations and across `--jobs` counts;
//! * the shipped corpus clears the RD floor the CI gate enforces, and a
//!   deliberately weakened rule set (`--weaken`) falls below it — the
//!   negative check proving the gate can actually fail;
//! * workspace baselines are rejected outright and never read
//!   implicitly, so a stale waiver file cannot mask an RD regression.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn robustness(extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sgx-lint"));
    cmd.arg("robustness").arg("--corpus").arg(corpus_dir());
    cmd.args(extra);
    cmd.output().expect("spawn sgx-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8 stdout")
}

#[test]
fn reports_are_byte_identical_across_runs_and_jobs() {
    let a = robustness(&["--format", "json"]);
    let b = robustness(&["--format", "json"]);
    let par = robustness(&["--format", "json", "--jobs", "4"]);
    assert_eq!(a.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&a.stderr));
    assert!(!a.stdout.is_empty());
    assert_eq!(stdout(&a), stdout(&b), "two identical runs diverged");
    assert_eq!(stdout(&a), stdout(&par), "--jobs changed the report bytes");

    let t1 = robustness(&[]);
    let t2 = robustness(&["--jobs", "3"]);
    assert_eq!(stdout(&t1), stdout(&t2), "--jobs changed the text table bytes");
    assert!(stdout(&t1).contains("RD%"));
}

#[test]
fn shipped_corpus_clears_the_floor_and_weakening_fails_it() {
    // The CI gate floor is 95 (stricter than the 90% design target; the
    // shipped corpus scores 100.0).
    let strong = robustness(&["--floor", "95"]);
    assert_eq!(
        strong.status.code(),
        Some(0),
        "shipped corpus below RD floor:\n{}",
        stdout(&strong)
    );

    // Disabling the taint hardening must sink total RD below the same
    // floor — otherwise the gate is decorative.
    let weak = robustness(&["--floor", "95", "--weaken", "taint-indirection,taint-alias"]);
    assert_eq!(
        weak.status.code(),
        Some(1),
        "weakened run still clears the floor:\n{}",
        stdout(&weak)
    );
    assert!(String::from_utf8_lossy(&weak.stderr).contains("below floor"));
}

#[test]
fn unknown_weaken_knob_and_unknown_flag_are_usage_errors() {
    let bad_knob = robustness(&["--weaken", "nonsense"]);
    assert_eq!(bad_knob.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_knob.stderr).contains("nonsense"));

    let bad_flag = robustness(&["--frobnicate"]);
    assert_eq!(bad_flag.status.code(), Some(2));
}

#[test]
fn baselines_are_rejected_and_never_read_implicitly() {
    // Build a waiver file that would absorb every taint finding in the
    // corpus if the robustness path honored baselines.
    let dir = std::env::temp_dir().join("sgx_lint_robustness_baseline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let waiver = dir.join("lint-baseline.json");
    std::fs::write(
        &waiver,
        "{\"baseline\": [{\"path\": \"positive/untracked-slice-taint_1.rs\", \"rule\": \"untracked-slice-taint\", \"line\": 7.0, \"reason\": \"stale waiver trying to mask a regression\"}]}",
    )
    .unwrap();

    // Explicitly passing it is a hard usage error, not a silent ignore.
    let rejected = robustness(&["--baseline", waiver.to_str().unwrap()]);
    assert_eq!(rejected.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&rejected.stderr).contains("baseline"));

    // And with the waiver merely sitting on disk (the workspace default
    // name, in the working directory), a weakened run still fails the
    // floor: nothing on the robustness path picks a baseline up
    // implicitly, so the stale waiver cannot mask the RD regression.
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sgx-lint"));
    cmd.current_dir(&dir)
        .arg("robustness")
        .arg("--corpus")
        .arg(corpus_dir())
        .args(["--floor", "95", "--weaken", "taint-indirection,taint-alias"]);
    let masked = cmd.output().expect("spawn sgx-lint");
    assert_eq!(
        masked.status.code(),
        Some(1),
        "a baseline file on disk masked the weakened RD regression"
    );
}

#[test]
fn emit_variants_writes_one_directory_per_variant() {
    let dir = std::env::temp_dir().join("sgx_lint_robustness_emit_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = robustness(&["--emit-variants", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("emit dir exists")
        .filter_map(|e| e.ok())
        .collect();
    // Every variant is a directory named {case}__{label}; 63 cases × ~a
    // dozen applicable variants each. Spot-check volume and labeling.
    assert!(entries.len() > 500, "only {} variants emitted", entries.len());
    assert!(
        entries.iter().all(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false)),
        "flat files in the emit dir — expected one directory per variant"
    );
    let names: Vec<String> =
        entries.iter().map(|e| e.file_name().to_string_lossy().into_owned()).collect();
    assert!(names.iter().any(|f| f.contains("__wrap_d2_")));
    assert!(names.iter().any(|f| f.contains("__seqlen_n3_")));
    assert!(names.iter().any(|f| f.contains("__alias_s")));

    // Single-file variants hold exactly `case.rs`; cross-file xsplit
    // variants hold the two halves in deterministic part order.
    let single = names.iter().find(|f| f.contains("__wrap_d1")).expect("a wrap variant");
    let mut files: Vec<String> = std::fs::read_dir(dir.join(single))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
        .collect();
    files.sort();
    assert_eq!(files, vec!["case.rs".to_string()]);

    let split = names.iter().find(|f| f.contains("__xsplit_s")).expect("an xsplit variant");
    let mut files: Vec<String> = std::fs::read_dir(dir.join(split))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.file_name().to_string_lossy().into_owned()))
        .collect();
    files.sort();
    assert_eq!(files, vec!["part_a.rs".to_string(), "part_b.rs".to_string()]);
    let _ = std::fs::remove_dir_all(&dir);
}
