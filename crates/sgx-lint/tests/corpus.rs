//! Tier-1 guard: the labeled corpus must score perfectly.
//!
//! Every `corpus/positive/<rule>_<n>.rs` case must trigger its labeled
//! rule (a miss is a false negative) and every `corpus/negative/*.rs`
//! case must produce zero findings of any rule (each finding is a false
//! positive). Any FN or FP fails this test, so rule regressions surface
//! in `cargo test` before they surface as noise in the workspace lint.

use std::path::Path;

#[test]
fn corpus_scores_perfectly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let score = sgx_lint::corpus::score(&dir).unwrap_or_else(|e| panic!("corpus unreadable: {e}"));
    assert!(
        score.cases >= 50,
        "corpus shrank ({} cases); token rules need ~3+3 each and semantic rules ~2+2 each",
        score.cases
    );
    for rule in sgx_lint::RULES {
        let tp = score.per_rule.get(rule).map_or(0, |s| s.tp);
        assert!(tp >= 1, "rule `{rule}` has no firing positive corpus case:\n{}", score.table());
    }
    assert!(score.perfect(), "corpus regression:\n{}", score.table());
}
