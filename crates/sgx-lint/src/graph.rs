//! Workspace model: every scanned file, lexed and item-parsed once, plus a
//! name-keyed function symbol table — the substrate the semantic rules
//! ([`crate::semantic`]) run on.
//!
//! Functions are resolved by *name*, not by path: the workspace's own
//! style (no glob re-exports, descriptive fn names) keeps collisions rare,
//! and rules treat every same-named candidate rather than guessing. This
//! buys a cross-file call graph with zero dependencies.

use crate::engine::{self, FileClass, Finding};
use crate::parse::{self, Items};
use crate::tokenizer::{tokenize, Lexed};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One file, fully preprocessed.
pub struct FileCtx {
    /// Path as passed in (findings are labeled with its display form).
    pub path: PathBuf,
    /// Display label for findings.
    pub label: String,
    /// Rule-scope class from [`crate::classify`].
    pub class: FileClass,
    /// Owning crate (`sgx-sim` for `crates/sgx-sim/src/x.rs`, `tests` for
    /// repo-root integration tests, `""` for loose files).
    pub crate_name: String,
    /// Token stream + comments.
    pub lexed: Lexed,
    /// Per-token `#[cfg(test)]`/`#[test]` mask.
    pub mask: Vec<bool>,
    /// Parsed items.
    pub items: Items,
    /// Well-formed allow-markers as `(line, rule)` pairs.
    pub allows: Vec<(u32, String)>,
    /// True when the file carries the `// sgx-lint: calibration-file`
    /// pragma (opts into the calibration-provenance rule).
    pub calibration: bool,
    /// True when the file carries the `// sgx-lint: fault-tick-module`
    /// pragma (joins the fault-tick-coverage module set).
    pub fault_tick_module: bool,
    /// True when the file carries the `// sgx-lint: charge-module`
    /// pragma (joins the charge-escape module set).
    pub charge_module: bool,
    /// True when the file carries the `// sgx-lint: des-module` pragma
    /// (opts into the des-invariant rule).
    pub des_module: bool,
}

/// The whole scanned set.
pub struct Workspace {
    /// Files in deterministic scan order.
    pub files: Vec<FileCtx>,
    /// Function symbol table: name → `(file index, fn index)` candidates.
    pub fns: BTreeMap<String, Vec<(usize, usize)>>,
}

/// Derive the owning crate from a workspace-relative path.
pub fn crate_of(path: &Path) -> String {
    let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    if let Some(w) = comps.windows(2).find(|w| w[0] == "crates") {
        return w[1].to_string();
    }
    if comps.contains(&"tests") {
        return "tests".to_string();
    }
    String::new()
}

impl Workspace {
    /// Build the workspace from `(path, class, source)` triples. Malformed
    /// allow-markers are NOT reported here (the token pass owns that); the
    /// scratch findings are discarded.
    pub fn build(entries: Vec<(PathBuf, FileClass, String)>) -> Workspace {
        let mut files = Vec::with_capacity(entries.len());
        for (path, class, src) in entries {
            let lexed = tokenize(&src);
            let mask = engine::test_mask(&lexed.tokens);
            let items = parse::parse(&lexed);
            let label = path.to_string_lossy().into_owned();
            let mut scratch: Vec<Finding> = Vec::new();
            let markers = engine::parse_markers(&label, &lexed.comments, &mut scratch);
            let crate_name = crate_of(&path);
            files.push(FileCtx {
                path,
                label,
                class,
                crate_name,
                lexed,
                mask,
                items,
                allows: markers.allows,
                calibration: markers.calibration_file,
                fault_tick_module: markers.fault_tick_module,
                charge_module: markers.charge_module,
                des_module: markers.des_module,
            });
        }
        let mut fns: BTreeMap<String, Vec<(usize, usize)>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ni, item) in f.items.fns.iter().enumerate() {
                fns.entry(item.name.clone()).or_default().push((fi, ni));
            }
        }
        Workspace { files, fns }
    }

    /// Does an allow-marker in `file` suppress a `rule` finding on `line`?
    /// Same policy as the token pass: marker line and the line below.
    pub fn allowed(&self, file: usize, line: u32, rule: &str) -> bool {
        self.files[file]
            .allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || l + 1 == line))
    }

    /// Candidates for a bare call to `name` made from `file`: a same-file
    /// definition shadows same-named functions elsewhere (mirroring
    /// Rust's module-local name resolution), so the deep taint walk never
    /// wanders into an unrelated crate's `helper` just because the names
    /// collide. Only when the calling file defines no `name` do the
    /// cross-file candidates apply.
    pub fn resolve(&self, file: usize, name: &str) -> Vec<(usize, usize)> {
        let Some(all) = self.fns.get(name) else { return Vec::new() };
        let local: Vec<(usize, usize)> =
            all.iter().copied().filter(|&(fi, _)| fi == file).collect();
        if local.is_empty() {
            all.clone()
        } else {
            local
        }
    }

    /// Names of `root` and every function it transitively calls *within
    /// the same file*. Used to exempt the fault-engine's own charge paths
    /// from fault-tick-coverage.
    pub fn within_file_closure(&self, file: usize, root: &str) -> BTreeSet<String> {
        let f = &self.files[file];
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: Vec<String> = vec![root.to_string()];
        while let Some(name) = queue.pop() {
            if !seen.insert(name.clone()) {
                continue;
            }
            for item in f.items.fns.iter().filter(|i| i.name == name) {
                for call in &item.calls {
                    if !seen.contains(&call.callee)
                        && f.items.fns.iter().any(|i| i.name == call.callee)
                    {
                        queue.push(call.callee.clone());
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(sources: &[(&str, FileClass, &str)]) -> Workspace {
        Workspace::build(
            sources
                .iter()
                .map(|(p, c, s)| (PathBuf::from(p), *c, s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn crate_names_from_paths() {
        assert_eq!(crate_of(Path::new("crates/sgx-sim/src/machine.rs")), "sgx-sim");
        assert_eq!(crate_of(Path::new("tests/integration_joins.rs")), "tests");
        assert_eq!(crate_of(Path::new("loose.rs")), "");
    }

    #[test]
    fn symbol_table_spans_files() {
        let w = ws(&[
            ("crates/a/src/lib.rs", FileClass::Lib, "fn shared() {} fn only_a() {}"),
            ("crates/b/src/lib.rs", FileClass::Lib, "fn shared() {} fn only_b() { shared(); }"),
        ]);
        assert_eq!(w.fns["shared"].len(), 2);
        assert_eq!(w.fns["only_a"], [(0, 1)]);
    }

    #[test]
    fn resolution_prefers_same_file_definitions() {
        let w = ws(&[
            ("crates/a/src/lib.rs", FileClass::Lib, "fn shared() {} fn caller() { shared(); }"),
            ("crates/b/src/lib.rs", FileClass::Lib, "fn shared() {}"),
        ]);
        // From file 0 (which defines `shared`), only the local candidate.
        assert_eq!(w.resolve(0, "shared"), [(0, 0)]);
        // From a file with no local definition, every candidate applies.
        let w2 = ws(&[
            ("crates/a/src/lib.rs", FileClass::Lib, "fn caller() { shared(); }"),
            ("crates/b/src/lib.rs", FileClass::Lib, "fn shared() {}"),
            ("crates/c/src/lib.rs", FileClass::Lib, "fn shared() {}"),
        ]);
        assert_eq!(w2.resolve(0, "shared"), [(1, 0), (2, 0)]);
        assert!(w2.resolve(0, "absent").is_empty());
    }

    #[test]
    fn closure_is_transitive_and_file_local() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            FileClass::Lib,
            "fn root() { mid(); } fn mid() { leaf(); } fn leaf() {} fn other() {}",
        )]);
        let c = w.within_file_closure(0, "root");
        assert!(c.contains("root") && c.contains("mid") && c.contains("leaf"));
        assert!(!c.contains("other"));
    }

    #[test]
    fn allow_markers_cover_two_lines() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            FileClass::Lib,
            "// sgx-lint: allow(unsafe-code) vetted intrinsic\nfn f() {}\n",
        )]);
        assert!(w.allowed(0, 1, "unsafe-code"));
        assert!(w.allowed(0, 2, "unsafe-code"));
        assert!(!w.allowed(0, 3, "unsafe-code"));
        assert!(!w.allowed(0, 1, "nondeterminism"));
    }
}
