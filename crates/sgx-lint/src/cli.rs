//! Command-line front end.
//!
//! ```text
//! sgx-lint [--format text|json] [--baseline file.json] [paths...]
//! sgx-lint --score-corpus <dir>         score the labeled corpus
//! sgx-lint robustness [flags]           RD-score corpus + variants
//! ```
//!
//! The default scan root is `crates`. `--format json` emits a deterministic
//! report through [`sgx_bench_core::json`] — byte-identical across runs on
//! identical sources, which `ci.sh` checks by diffing two invocations.
//! `--baseline` suppresses findings listed in a checked-in waiver file; a
//! baseline entry that no longer matches anything is itself reported (rule
//! `stale-baseline`) so the waiver list cannot rot.
//!
//! The `robustness` subcommand generates semantics-preserving variants of
//! every corpus case ([`crate::variants`]) and reports rapx-bench-style
//! robust-detection scores ([`crate::robustness`]). It deliberately
//! rejects `--baseline` (exit 2): variants are corpus-only and a stale
//! workspace waiver must never mask an RD regression.
//!
//! Exit code 0 = clean (or corpus at 100% TP / 0 FP, or RD at/above
//! `--floor`), 1 = findings (or corpus misses, or RD below the floor),
//! 2 = usage error.

use crate::corpus;
use crate::engine::Finding;
use crate::robustness;
use sgx_bench_core::json::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Output format selected on the command line.
enum Format {
    Text,
    Json,
}

/// One waiver from the `--baseline` file, matched on (path, rule, line).
#[derive(Debug)]
struct BaselineEntry {
    path: String,
    rule: String,
    line: u32,
}

/// Run the CLI on `args` (without the program name).
pub fn run(args: impl Iterator<Item = String>) -> ExitCode {
    let mut format = Format::Text;
    let mut baseline_path: Option<PathBuf> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = args.peekable();
    if args.peek().map(String::as_str) == Some("robustness") {
        args.next();
        return run_robustness(args);
    }
    if args.peek().map(String::as_str) == Some("selfcheck") {
        args.next();
        return run_selfcheck(args);
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            // Legacy spelling of `--format json`.
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "sgx-lint: --format needs `text` or `json`, got {}",
                        other.map_or_else(|| "nothing".to_string(), |o| format!("`{o}`"))
                    );
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("sgx-lint: --baseline needs a file");
                    return ExitCode::from(2);
                }
            },
            "--score-corpus" => match args.next() {
                Some(dir) => corpus_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sgx-lint: --score-corpus needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: sgx-lint [--format text|json] [--baseline file.json] [paths...]\n       sgx-lint --score-corpus <dir>\n       sgx-lint robustness [flags]   (see `sgx-lint robustness --help`)\n\nLints workspace Rust sources for model-integrity violations.\nPer-file rules: untracked-access, nondeterminism, counter-truncation,\npanic-in-library, unsafe-code, swallowed-error.\nWorkspace rules: untracked-slice-taint, counter-conservation,\nfault-tick-coverage, calibration-provenance, charge-escape,\ndes-invariant.\nDefault scan root: crates"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("sgx-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if let Some(dir) = corpus_dir {
        let score = match corpus::score(&dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sgx-lint: {e}");
                return ExitCode::from(2);
            }
        };
        print!("{}", score.table());
        return if score.perfect() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }
    // A typo'd root must not pass as "0 findings across 0 files" in CI.
    for p in &paths {
        if !p.exists() {
            eprintln!("sgx-lint: no such path: {}", p.display());
            return ExitCode::from(2);
        }
    }
    let reports = crate::analyze_paths(&paths);
    let suppressed: usize = reports.iter().map(|(_, r)| r.suppressed).sum();
    let files = reports.len();
    let mut findings: Vec<Finding> =
        reports.iter().flat_map(|(_, r)| r.findings.iter().cloned()).collect();
    findings.sort();
    findings.dedup();

    let mut baselined = 0usize;
    if let Some(bp) = &baseline_path {
        let entries = match load_baseline(bp) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("sgx-lint: {}: {e}", bp.display());
                return ExitCode::from(2);
            }
        };
        let mut used = vec![false; entries.len()];
        findings.retain(|f| {
            match entries
                .iter()
                .position(|e| e.path == f.path && e.rule == f.rule && e.line == f.line)
            {
                Some(i) => {
                    used[i] = true;
                    baselined += 1;
                    false
                }
                None => true,
            }
        });
        // A waiver that matches nothing is dead weight and may hide a fixed
        // finding silently regressing to a different line: fail on it.
        for (e, u) in entries.iter().zip(&used) {
            if !u {
                findings.push(Finding {
                    path: e.path.clone(),
                    line: e.line,
                    rule: "stale-baseline".to_string(),
                    message: format!(
                        "baseline entry for `{}` no longer matches any finding — prune it",
                        e.rule
                    ),
                });
            }
        }
        findings.sort();
    }

    match format {
        Format::Json => {
            println!("{}", report_value(&findings, files, suppressed, baselined).pretty());
        }
        Format::Text => {
            for f in &findings {
                println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            }
            let total = findings.len();
            println!(
                "sgx-lint: {total} finding{} across {files} files ({suppressed} suppressed by allow-markers, {baselined} baselined)",
                if total == 1 { "" } else { "s" }
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `selfcheck` subcommand: run the variant generator over pinned
/// *clean* workspace files as a self-consistency fuzz. Any finding on a
/// variant of a clean file is a rule false positive by construction.
/// See [`crate::selfcheck`].
fn run_selfcheck(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> ExitCode {
    let mut opts = crate::selfcheck::Options::default();
    let mut format = Format::Text;
    let mut files: Vec<PathBuf> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => opts.seed = n,
                None => {
                    eprintln!("sgx-lint: --seed needs a number");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "sgx-lint: --format needs `text` or `json`, got {}",
                        other.map_or_else(|| "nothing".to_string(), |o| format!("`{o}`"))
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: sgx-lint selfcheck [--seed N] [--format text|json] [files...]\n\nRuns the robustness variant generator over pinned clean workspace files.\nEvery transform is semantics-preserving and keeps marker/pragma line\nadjacency, so a finding on any variant is a rule false positive: exit 1\n(marker-bearing files are in scope). Files that are not clean solo are\nusage errors: exit 2.\nDefault file set:\n{}",
                    crate::selfcheck::DEFAULT_FILES
                        .iter()
                        .map(|f| format!("  {f}"))
                        .collect::<Vec<_>>()
                        .join("\n")
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("sgx-lint: selfcheck: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => files.push(PathBuf::from(path)),
        }
    }
    if files.is_empty() {
        files = crate::selfcheck::DEFAULT_FILES.iter().map(PathBuf::from).collect();
    }
    let report = match crate::selfcheck::run(&files, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sgx-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Json => println!("{}", report.json().pretty()),
        Format::Text => print!("{}", report.table()),
    }
    if report.false_positives.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The `robustness` subcommand: RD-score the corpus plus generated
/// variants. See the module docs of [`crate::robustness`] for the model.
fn run_robustness(mut args: std::iter::Peekable<impl Iterator<Item = String>>) -> ExitCode {
    let mut opts = robustness::Options::default();
    let mut corpus_dir = PathBuf::from("crates/sgx-lint/corpus");
    let mut format = Format::Text;
    let mut floor: Option<f64> = None;
    fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> Result<T, ExitCode> {
        v.and_then(|s| s.parse().ok()).ok_or_else(|| {
            eprintln!("sgx-lint: {flag} needs a number");
            ExitCode::from(2)
        })
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--corpus" => match args.next() {
                Some(d) => corpus_dir = PathBuf::from(d),
                None => {
                    eprintln!("sgx-lint: --corpus needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match parse_num("--seed", args.next()) {
                Ok(n) => opts.seed = n,
                Err(c) => return c,
            },
            "--depth" => match parse_num("--depth", args.next()) {
                Ok(n) => opts.depth = n,
                Err(c) => return c,
            },
            "--seqlen" => match parse_num("--seqlen", args.next()) {
                Ok(n) => opts.seqlen = n,
                Err(c) => return c,
            },
            "--jobs" => match parse_num("--jobs", args.next()) {
                Ok(n) => opts.jobs = n,
                Err(c) => return c,
            },
            "--floor" => match parse_num("--floor", args.next()) {
                Ok(n) => floor = Some(n),
                Err(c) => return c,
            },
            "--weaken" => match args.next() {
                Some(list) => {
                    opts.weaken.extend(list.split(',').map(str::trim).filter(|s| !s.is_empty()).map(str::to_string))
                }
                None => {
                    eprintln!("sgx-lint: --weaken needs a comma-separated knob list");
                    return ExitCode::from(2);
                }
            },
            "--emit-variants" => match args.next() {
                Some(d) => opts.emit_dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("sgx-lint: --emit-variants needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "sgx-lint: --format needs `text` or `json`, got {}",
                        other.map_or_else(|| "nothing".to_string(), |o| format!("`{o}`"))
                    );
                    return ExitCode::from(2);
                }
            },
            // Workspace waivers must never leak into RD scoring: a stale
            // baseline entry could silently absorb a variant regression.
            "--baseline" => {
                eprintln!(
                    "sgx-lint: robustness scoring ignores workspace baselines; drop --baseline"
                );
                return ExitCode::from(2);
            }
            "--help" | "-h" => {
                println!(
                    "usage: sgx-lint robustness [--corpus DIR] [--seed N] [--depth N] [--seqlen N]\n                           [--jobs N] [--floor PCT] [--weaken KNOB[,KNOB]]\n                           [--emit-variants DIR] [--format text|json]\n\nGenerates seeded semantics-preserving variants of every corpus case and\nreports rapx-bench-style robust-detection (RD) per rule and per transform.\nExit 1 when --floor is set and total RD falls below it.\nKnown --weaken knobs: taint-indirection (cap taint walk depth),\ntaint-alias (disable alias resolution in taint and conservation).\n--emit-variants writes one directory per variant: {{case}}__{{label}}/<file>."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("sgx-lint: robustness: unexpected argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let report = match robustness::run(&corpus_dir, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sgx-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Json => println!("{}", report.json().pretty()),
        Format::Text => print!("{}", report.table()),
    }
    if let Some(f) = floor {
        if report.rd_percent() < f {
            eprintln!("sgx-lint: RD {}% below floor {f}%", report.rd_percent());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Build the deterministic JSON report document.
///
/// Every field is either a sorted list or a scalar derived from one, so the
/// bytes depend only on the analyzed sources — never on walk order, clocks
/// or addresses. (The shared writer prints integral numbers as `N.0`.)
fn report_value(findings: &[Finding], files: usize, suppressed: usize, baselined: usize) -> Value {
    Value::Obj(vec![
        ("schema".into(), Value::Str("sgx-lint/1".into())),
        ("files".into(), Value::Num(files as f64)),
        ("suppressed".into(), Value::Num(suppressed as f64)),
        ("baselined".into(), Value::Num(baselined as f64)),
        ("total".into(), Value::Num(findings.len() as f64)),
        (
            "findings".into(),
            Value::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Value::Obj(vec![
                            ("path".into(), Value::Str(f.path.clone())),
                            ("line".into(), Value::Num(f.line as f64)),
                            ("rule".into(), Value::Str(f.rule.clone())),
                            ("message".into(), Value::Str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Load and validate a `--baseline` file:
/// `{"baseline": [{"path": …, "rule": …, "line": N, "reason": …}, …]}`.
/// `reason` is mandatory and non-empty — a waiver without a justification
/// is indistinguishable from a rug-swept finding.
fn load_baseline(path: &Path) -> Result<Vec<BaselineEntry>, String> {
    let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = Value::parse(&src)?;
    let arr = doc
        .get("baseline")
        .and_then(Value::as_arr)
        .ok_or_else(|| "expected a top-level \"baseline\" array".to_string())?;
    let mut entries = Vec::with_capacity(arr.len());
    for (i, item) in arr.iter().enumerate() {
        let field = |key: &str| {
            item.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline[{i}]: missing string field \"{key}\""))
        };
        let line = item
            .get("line")
            .and_then(Value::as_f64)
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .ok_or_else(|| format!("baseline[{i}]: missing integral field \"line\""))?;
        let reason = field("reason")?;
        if reason.trim().is_empty() {
            return Err(format!("baseline[{i}]: \"reason\" must not be empty"));
        }
        entries.push(BaselineEntry { path: field("path")?, rule: field("rule")?, line: line as u32 });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileClass;

    fn finding(path: &str, rule: &str, line: u32) -> Finding {
        Finding {
            path: path.into(),
            line,
            rule: rule.into(),
            message: format!("{rule} at {path}:{line}"),
        }
    }

    #[test]
    fn json_report_is_byte_identical_across_runs() {
        let src = "fn f(v: &T) { let s = v.as_slice_untracked(); let _ = s[0]; }\n";
        let render = || {
            let report = crate::analyze_single("lib.rs", FileClass::OperatorLib, src);
            report_value(&report.findings, 1, report.suppressed, 0).pretty()
        };
        let a = render();
        let b = render();
        assert!(!a.is_empty());
        assert_eq!(a, b, "two runs over identical input must emit identical bytes");
    }

    #[test]
    fn json_report_roundtrips_and_orders_findings() {
        let fs = vec![finding("b.rs", "unsafe-code", 2), finding("a.rs", "nondeterminism", 9)];
        let doc = report_value(&fs, 2, 1, 0);
        let back = Value::parse(&doc.pretty()).unwrap();
        assert_eq!(back.get("total").and_then(Value::as_f64), Some(2.0));
        let arr = back.get("findings").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("path").and_then(Value::as_str), Some("b.rs"));
        assert_eq!(arr[0].get("line").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn baseline_parses_and_rejects_bad_entries() {
        let dir = std::env::temp_dir().join("sgx_lint_cli_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(
            &good,
            "{\"baseline\": [{\"path\": \"a.rs\", \"rule\": \"unsafe-code\", \"line\": 3.0, \"reason\": \"vetted FFI shim\"}]}",
        )
        .unwrap();
        let entries = load_baseline(&good).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!((entries[0].path.as_str(), entries[0].line), ("a.rs", 3));

        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{\"baseline\": [{\"path\": \"a.rs\", \"rule\": \"x\", \"line\": 3}]}")
            .unwrap();
        assert!(load_baseline(&bad).unwrap_err().contains("reason"));
        std::fs::write(&bad, "{\"baseline\": [{\"path\": \"a.rs\", \"rule\": \"x\", \"line\": 3, \"reason\": \"  \"}]}")
            .unwrap();
        assert!(load_baseline(&bad).unwrap_err().contains("reason"));
        std::fs::write(&bad, "[]").unwrap();
        assert!(load_baseline(&bad).unwrap_err().contains("baseline"));
    }
}
