//! Command-line front end.
//!
//! ```text
//! sgx-lint [--json] [paths...]          lint (default root: crates)
//! sgx-lint --score-corpus <dir>         score the labeled corpus
//! ```
//!
//! Exit code 0 = clean (or corpus at 100% TP / 0 FP), 1 = findings (or
//! corpus misses), 2 = usage error.

use crate::corpus;
use crate::engine::FileReport;
use std::path::PathBuf;
use std::process::ExitCode;

/// JSON-escape a string (the lint is dependency-free by design).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Run the CLI on `args` (without the program name).
pub fn run(args: impl Iterator<Item = String>) -> ExitCode {
    let mut json = false;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--score-corpus" => match args.next() {
                Some(dir) => corpus_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sgx-lint: --score-corpus needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: sgx-lint [--json] [paths...]\n       sgx-lint --score-corpus <dir>\n\nLints workspace Rust sources for model-integrity violations\n(untracked-access, nondeterminism, counter-truncation,\npanic-in-library, unsafe-code, swallowed-error).\nDefault scan root: crates"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("sgx-lint: unknown flag {flag}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if let Some(dir) = corpus_dir {
        let score = match corpus::score(&dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sgx-lint: {e}");
                return ExitCode::from(2);
            }
        };
        print!("{}", score.table());
        return if score.perfect() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if paths.is_empty() {
        paths.push(PathBuf::from("crates"));
    }
    // A typo'd root must not pass as "0 findings across 0 files" in CI.
    for p in &paths {
        if !p.exists() {
            eprintln!("sgx-lint: no such path: {}", p.display());
            return ExitCode::from(2);
        }
    }
    let reports = crate::analyze_paths(&paths);
    let total: usize = reports.iter().map(|(_, r)| r.findings.len()).sum();
    let suppressed: usize = reports.iter().map(|(_, r)| r.suppressed).sum();
    let files = reports.len();

    if json {
        print!("{}", render_json(&reports, suppressed));
    } else {
        for (_, report) in &reports {
            for f in &report.findings {
                println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            }
        }
        println!(
            "sgx-lint: {total} finding{} across {files} files ({suppressed} suppressed by allow-markers)",
            if total == 1 { "" } else { "s" }
        );
    }
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render_json(reports: &[(PathBuf, FileReport)], suppressed: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    let mut first = true;
    for (_, report) in reports {
        for f in &report.findings {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                esc(&f.path),
                f.line,
                esc(&f.rule),
                esc(&f.message)
            ));
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    let total: usize = reports.iter().map(|(_, r)| r.findings.len()).sum();
    out.push_str(&format!(
        "],\n  \"total\": {total},\n  \"suppressed\": {suppressed},\n  \"files\": {}\n}}\n",
        reports.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(esc("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(esc("plain"), "\"plain\"");
    }
}
