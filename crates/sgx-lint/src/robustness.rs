//! rapx-bench-style *robust detection* (RD) scoring: run every rule over
//! the labeled corpus **and** auto-generated semantics-preserving
//! variants of each case ([`crate::variants`]), and report how much of
//! the base-case accuracy survives mutation.
//!
//! ## Scoring model
//!
//! Every base case gets a verdict exactly as in [`crate::corpus`]: a
//! positive case is correct when its labeled rule fires, a negative case
//! when *no* rule fires. Each case is then mutated by every applicable
//! transform kind; a kind's variants form one *group*:
//!
//! * **absolute** — every variant in the group keeps the correct verdict;
//! * **partial**  — some do, some don't;
//! * **failed**   — every variant flips the verdict.
//!
//! A case is **robust** when its base verdict is correct *and* every
//! applicable group is absolute. `RD% = robust / bases` per rule and in
//! total — the headline number the CI gate enforces a floor on.
//! Transforms that don't apply to a case (nothing to wrap, fewer than
//! three items to reorder, …) contribute no group and don't dilute RD.
//!
//! ## Determinism
//!
//! Each case's variant stream is seeded with
//! `mix(global_seed, fnv1a(case_name))`, so generation is a pure function
//! of `(seed, case)` — independent of corpus iteration order and of
//! `--jobs`. Workers return results keyed by case index and the report is
//! assembled in index order, so the rendered table and JSON are
//! byte-identical across runs and thread counts. Workspace baselines
//! (`--baseline`) are deliberately rejected: variants are corpus-only and
//! a stale waiver file must never mask an RD regression.

use crate::engine::{FileClass, RULES};
use crate::semantic::Config;
use crate::variants::{self, fnv1a, mix, Transform};
use sgx_bench_core::json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Scorer options, straight from the CLI flags.
#[derive(Debug, Clone)]
pub struct Options {
    /// Global seed for variant generation.
    pub seed: u64,
    /// Maximum wrapper indirection depth (`wrap[d1]..wrap[dN]`).
    pub depth: usize,
    /// Maximum `let`-chain length (`seqlen[n2]..seqlen[nN]`).
    pub seqlen: usize,
    /// Worker threads (1 = serial; output is identical either way).
    pub jobs: usize,
    /// Rule defenses to disable ([`weaken_config`]) — the CI negative
    /// check proves RD collapses without them.
    pub weaken: Vec<String>,
    /// When set, write every generated variant into this directory
    /// (debugging and corpus promotion).
    pub emit_dir: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            seed: 42,
            depth: 2,
            seqlen: 3,
            jobs: 1,
            weaken: Vec::new(),
            emit_dir: None,
        }
    }
}

/// Translate `--weaken` knob names into a semantic [`Config`].
pub fn weaken_config(weaken: &[String]) -> Result<Config, String> {
    let mut cfg = Config::default();
    for knob in weaken {
        match knob.as_str() {
            "taint-indirection" => cfg.taint_call_depth = 1,
            "taint-alias" => cfg.taint_aliases = false,
            other => {
                return Err(format!(
                    "unknown --weaken knob `{other}` (known: taint-indirection, taint-alias)"
                ))
            }
        }
    }
    Ok(cfg)
}

/// One variant's verdict.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// Transform label, e.g. `wrap[d2]`.
    pub label: String,
    /// Did the case keep the correct verdict under this variant?
    pub ok: bool,
}

/// One transform kind's variants over one case.
#[derive(Debug, Clone)]
pub struct GroupOutcome {
    /// Transform kind (the grouping key), e.g. `wrap`.
    pub kind: &'static str,
    /// Individual variant verdicts (never empty — inapplicable kinds
    /// produce no group at all).
    pub variants: Vec<VariantOutcome>,
}

impl GroupOutcome {
    /// Every variant correct.
    pub fn absolute(&self) -> bool {
        self.variants.iter().all(|v| v.ok)
    }

    /// Every variant wrong.
    pub fn failed(&self) -> bool {
        self.variants.iter().all(|v| !v.ok)
    }
}

/// One base case, fully scored.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Corpus-relative name, e.g. `positive/untracked-slice-taint_1.rs`.
    pub name: String,
    /// Labeled rule.
    pub rule: String,
    /// Positive (must fire) or negative (must stay silent).
    pub positive: bool,
    /// Base verdict correct?
    pub base_ok: bool,
    /// Rules that fired on a negative base case (FP attribution).
    pub base_noise: Vec<String>,
    /// Applicable transform groups.
    pub groups: Vec<GroupOutcome>,
}

impl CaseOutcome {
    /// Base correct and every group absolute.
    pub fn robust(&self) -> bool {
        self.base_ok && self.groups.iter().all(GroupOutcome::absolute)
    }
}

/// Per-rule RD aggregate (one table row).
#[derive(Debug, Default, Clone)]
pub struct RuleRd {
    /// Base cases labeled with this rule.
    pub bases: usize,
    /// Positive bases where the rule fired.
    pub tp: usize,
    /// Positive bases where it did not.
    pub fn_: usize,
    /// Negative bases that stayed silent.
    pub tn: usize,
    /// Negative bases with any finding.
    pub fp: usize,
    /// Applicable variant groups across this rule's cases.
    pub groups: usize,
    /// Groups where every variant kept the verdict.
    pub absolute: usize,
    /// Groups with mixed verdicts.
    pub partial: usize,
    /// Groups where every variant flipped the verdict.
    pub failed: usize,
    /// Robust cases (base correct + all groups absolute).
    pub robust: usize,
}

impl RuleRd {
    /// RD percentage for this row (100.0 when there are no bases).
    pub fn rd_percent(&self) -> f64 {
        if self.bases == 0 {
            return 100.0;
        }
        round1(self.robust as f64 * 100.0 / self.bases as f64)
    }
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// The full RD report.
#[derive(Debug)]
pub struct Report {
    /// Options echoed for provenance.
    pub options: Options,
    /// Every case in deterministic corpus order.
    pub cases: Vec<CaseOutcome>,
}

impl Report {
    /// Per-rule aggregate rows, keyed by rule name.
    pub fn per_rule(&self) -> BTreeMap<String, RuleRd> {
        let mut rows: BTreeMap<String, RuleRd> = BTreeMap::new();
        for rule in RULES {
            rows.insert(rule.to_string(), RuleRd::default());
        }
        for case in &self.cases {
            let row = rows.entry(case.rule.clone()).or_default();
            row.bases += 1;
            if case.positive {
                if case.base_ok {
                    row.tp += 1;
                } else {
                    row.fn_ += 1;
                }
            } else if case.base_ok {
                row.tn += 1;
            } else {
                row.fp += 1;
            }
            row.groups += case.groups.len();
            for g in &case.groups {
                if g.absolute() {
                    row.absolute += 1;
                } else if g.failed() {
                    row.failed += 1;
                } else {
                    row.partial += 1;
                }
            }
            if case.robust() {
                row.robust += 1;
            }
        }
        rows
    }

    /// Per-transform-kind aggregate `(groups, absolute, partial, failed)`.
    pub fn per_transform(&self) -> BTreeMap<&'static str, (usize, usize, usize, usize)> {
        let mut rows: BTreeMap<&'static str, (usize, usize, usize, usize)> = BTreeMap::new();
        for case in &self.cases {
            for g in &case.groups {
                let row = rows.entry(g.kind).or_default();
                row.0 += 1;
                if g.absolute() {
                    row.1 += 1;
                } else if g.failed() {
                    row.3 += 1;
                } else {
                    row.2 += 1;
                }
            }
        }
        rows
    }

    /// Overall RD percentage: robust cases / all cases.
    pub fn rd_percent(&self) -> f64 {
        if self.cases.is_empty() {
            return 100.0;
        }
        let robust = self.cases.iter().filter(|c| c.robust()).count();
        round1(robust as f64 * 100.0 / self.cases.len() as f64)
    }

    /// Every `(case, variant label)` that flipped the verdict, plus base
    /// misses as `(case, "base")`.
    pub fn failures(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for case in &self.cases {
            if !case.base_ok {
                out.push((case.name.clone(), "base".to_string()));
            }
            for g in &case.groups {
                for v in &g.variants {
                    if !v.ok {
                        out.push((case.name.clone(), v.label.clone()));
                    }
                }
            }
        }
        out
    }

    /// Aligned text table, rapx-style.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let weaken = if self.options.weaken.is_empty() {
            "(none)".to_string()
        } else {
            self.options.weaken.join(",")
        };
        out.push_str(&format!(
            "sgx-lint robustness — seed {}, wrap depth {}, seqlen {}, weaken {}\n",
            self.options.seed, self.options.depth, self.options.seqlen, weaken
        ));
        out.push_str(&format!(
            "{:<24} {:>5} {:>4} {:>4} {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} {:>7} {:>6}\n",
            "rule", "bases", "TP", "FN", "TN", "FP", "grp", "abs", "part", "fail", "robust", "RD%"
        ));
        let rows = self.per_rule();
        let mut total = RuleRd::default();
        for (rule, r) in &rows {
            out.push_str(&format!(
                "{rule:<24} {:>5} {:>4} {:>4} {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} {:>7} {:>6.1}\n",
                r.bases,
                r.tp,
                r.fn_,
                r.tn,
                r.fp,
                r.groups,
                r.absolute,
                r.partial,
                r.failed,
                r.robust,
                r.rd_percent()
            ));
            total.bases += r.bases;
            total.tp += r.tp;
            total.fn_ += r.fn_;
            total.tn += r.tn;
            total.fp += r.fp;
            total.groups += r.groups;
            total.absolute += r.absolute;
            total.partial += r.partial;
            total.failed += r.failed;
            total.robust += r.robust;
        }
        out.push_str(&format!(
            "{:<24} {:>5} {:>4} {:>4} {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} {:>7} {:>6.1}\n",
            "total",
            total.bases,
            total.tp,
            total.fn_,
            total.tn,
            total.fp,
            total.groups,
            total.absolute,
            total.partial,
            total.failed,
            total.robust,
            self.rd_percent()
        ));
        let per_t = self.per_transform();
        out.push_str("per transform kind (groups: absolute/partial/failed):\n");
        for kind in variants::KINDS {
            let (g, a, p, f) = per_t.get(kind).copied().unwrap_or((0, 0, 0, 0));
            out.push_str(&format!("  {kind:<10} {g:>4} groups: {a:>4} {p:>4} {f:>4}\n"));
        }
        let failures = self.failures();
        if failures.is_empty() {
            out.push_str("no failing variants\n");
        } else {
            out.push_str(&format!("{} failing variant(s):\n", failures.len()));
            for (case, label) in &failures {
                out.push_str(&format!("  {case} :: {label}\n"));
            }
        }
        out
    }

    /// Deterministic JSON rendering through [`sgx_bench_core::json`].
    pub fn json(&self) -> Value {
        let rows = self.per_rule();
        let per_rule: Vec<Value> = rows
            .iter()
            .map(|(rule, r)| {
                Value::Obj(vec![
                    ("rule".into(), Value::Str(rule.clone())),
                    ("bases".into(), Value::Num(r.bases as f64)),
                    ("tp".into(), Value::Num(r.tp as f64)),
                    ("fn".into(), Value::Num(r.fn_ as f64)),
                    ("tn".into(), Value::Num(r.tn as f64)),
                    ("fp".into(), Value::Num(r.fp as f64)),
                    ("groups".into(), Value::Num(r.groups as f64)),
                    ("absolute".into(), Value::Num(r.absolute as f64)),
                    ("partial".into(), Value::Num(r.partial as f64)),
                    ("failed".into(), Value::Num(r.failed as f64)),
                    ("robust".into(), Value::Num(r.robust as f64)),
                    ("rd_percent".into(), Value::Num(r.rd_percent())),
                ])
            })
            .collect();
        let per_t = self.per_transform();
        let per_transform: Vec<Value> = variants::KINDS
            .iter()
            .map(|kind| {
                let (g, a, p, f) = per_t.get(kind).copied().unwrap_or((0, 0, 0, 0));
                Value::Obj(vec![
                    ("kind".into(), Value::Str((*kind).into())),
                    ("groups".into(), Value::Num(g as f64)),
                    ("absolute".into(), Value::Num(a as f64)),
                    ("partial".into(), Value::Num(p as f64)),
                    ("failed".into(), Value::Num(f as f64)),
                ])
            })
            .collect();
        let failures: Vec<Value> = self
            .failures()
            .into_iter()
            .map(|(case, label)| {
                Value::Obj(vec![
                    ("case".into(), Value::Str(case)),
                    ("variant".into(), Value::Str(label)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str("sgx-lint-robustness/1".into())),
            (
                "params".into(),
                Value::Obj(vec![
                    ("seed".into(), Value::Num(self.options.seed as f64)),
                    ("depth".into(), Value::Num(self.options.depth as f64)),
                    ("seqlen".into(), Value::Num(self.options.seqlen as f64)),
                    (
                        "weaken".into(),
                        Value::Arr(
                            self.options.weaken.iter().map(|w| Value::Str(w.clone())).collect(),
                        ),
                    ),
                    ("kinds".into(), Value::Num(variants::KINDS.len() as f64)),
                ]),
            ),
            ("cases".into(), Value::Num(self.cases.len() as f64)),
            ("rd_percent".into(), Value::Num(self.rd_percent())),
            ("per_rule".into(), Value::Arr(per_rule)),
            ("per_transform".into(), Value::Arr(per_transform)),
            ("failures".into(), Value::Arr(failures)),
        ])
    }
}

/// The full variant plan for one case seed: every transform instance the
/// scorer will attempt, in deterministic order (grouped by kind).
fn plan(case_seed: u64, opts: &Options) -> Vec<Transform> {
    let mut out = vec![
        Transform::Rename { seed: mix(case_seed, 11) },
        Transform::Rename { seed: mix(case_seed, 12) },
        Transform::Reorder { seed: mix(case_seed, 21) },
        Transform::Reorder { seed: mix(case_seed, 22) },
    ];
    for d in 1..=opts.depth {
        out.push(Transform::Wrap { depth: d });
    }
    for n in 2..=opts.seqlen {
        out.push(Transform::Seqlen { chain: n });
    }
    out.push(Transform::Nest { depth: 1 });
    out.push(Transform::Nest { depth: 2 });
    out.push(Transform::Noise { seed: mix(case_seed, 31) });
    out.push(Transform::Noise { seed: mix(case_seed, 32) });
    out.push(Transform::Alias { seed: mix(case_seed, 51) });
    out.push(Transform::Alias { seed: mix(case_seed, 52) });
    out.push(Transform::Dyncall);
    out.push(Transform::Xsplit { seed: mix(case_seed, 61) });
    out.push(Transform::Xsplit { seed: mix(case_seed, 62) });
    out.push(Transform::Compose { seed: mix(case_seed, 41) });
    out.push(Transform::Compose { seed: mix(case_seed, 42) });
    out
}

/// Verdict for one source text under this case's label: `(correct,
/// noise-rules-fired)` — noise only populated for negative cases.
fn verdict(name: &str, rule: &str, positive: bool, src: &str, cfg: &Config) -> (bool, Vec<String>) {
    let report = crate::analyze_single_cfg(name, FileClass::OperatorLib, src, cfg);
    if positive {
        (report.findings.iter().any(|f| f.rule == rule), Vec::new())
    } else {
        let noise: Vec<String> = report.findings.iter().map(|f| f.rule.clone()).collect();
        (noise.is_empty(), noise)
    }
}

/// Verdict for a multi-file variant workspace. A one-file workspace takes
/// the exact single-file path above (same label, same analysis entry
/// point), so pre-existing variants score byte-identically; cross-file
/// variants ([`variants::apply_ws`]) build one [`crate::analyze_set_cfg`]
/// workspace so set-scoped rules see every part together.
fn verdict_ws(
    case_name: &str,
    rule: &str,
    positive: bool,
    files: &[(String, String)],
    cfg: &Config,
) -> (bool, Vec<String>) {
    if let [(_, src)] = files {
        return verdict(case_name, rule, positive, src, cfg);
    }
    let stem = case_name.trim_end_matches(".rs");
    let entries: Vec<(PathBuf, FileClass, String)> = files
        .iter()
        .map(|(fname, src)| {
            (PathBuf::from(format!("{stem}/{fname}")), FileClass::OperatorLib, src.clone())
        })
        .collect();
    let reports = crate::analyze_set_cfg(entries, cfg);
    if positive {
        (reports.iter().any(|(_, r)| r.findings.iter().any(|f| f.rule == rule)), Vec::new())
    } else {
        let noise: Vec<String> = reports
            .iter()
            .flat_map(|(_, r)| r.findings.iter().map(|f| f.rule.clone()))
            .collect();
        (noise.is_empty(), noise)
    }
}

/// One loaded case, pre-scoring.
struct CaseInput {
    name: String,
    rule: String,
    positive: bool,
    src: String,
}

fn load_cases(dir: &Path) -> Result<Vec<CaseInput>, String> {
    let mut out = Vec::new();
    for (side, positive) in [("positive", true), ("negative", false)] {
        let side_dir = dir.join(side);
        let files = crate::collect_rust_files(&side_dir);
        if files.is_empty() {
            return Err(format!("no corpus cases under {}", side_dir.display()));
        }
        for file in files {
            let Some(rule) = crate::corpus::labeled_rule(&file) else {
                return Err(format!("corpus file {} is not named <rule>_<n>.rs", file.display()));
            };
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let fname = file.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
            out.push(CaseInput { name: format!("{side}/{fname}"), rule, positive, src });
        }
    }
    Ok(out)
}

fn score_case(case: &CaseInput, opts: &Options, cfg: &Config) -> CaseOutcome {
    let (base_ok, base_noise) = verdict(&case.name, &case.rule, case.positive, &case.src, cfg);
    let case_seed = mix(opts.seed, fnv1a(&case.name));
    let mut groups: Vec<GroupOutcome> = Vec::new();
    for t in plan(case_seed, opts) {
        let Some(files) = variants::apply_ws(&case.src, &t) else { continue };
        if let Some(dir) = &opts.emit_dir {
            let safe = t.label().replace(['[', ']'], "_");
            let vdir = dir.join(format!("{}__{safe}", case.name.replace(['/', '.'], "_")));
            // One directory per variant, files in workspace order (already
            // deterministic from `apply_ws`). Emission is best-effort
            // debugging output; a full disk must not abort scoring, but it
            // must not be silent either.
            if let Err(e) = std::fs::create_dir_all(&vdir).and_then(|()| {
                files.iter().try_for_each(|(fname, src)| std::fs::write(vdir.join(fname), src))
            }) {
                eprintln!("sgx-lint: emit {}: {e}", vdir.display());
            }
        }
        let (ok, _) = verdict_ws(&case.name, &case.rule, case.positive, &files, cfg);
        let kind = t.kind();
        match groups.last_mut() {
            Some(g) if g.kind == kind => g.variants.push(VariantOutcome { label: t.label(), ok }),
            _ => groups.push(GroupOutcome {
                kind,
                variants: vec![VariantOutcome { label: t.label(), ok }],
            }),
        }
    }
    CaseOutcome {
        name: case.name.clone(),
        rule: case.rule.clone(),
        positive: case.positive,
        base_ok,
        base_noise,
        groups,
    }
}

/// Score the corpus at `dir` under `opts`. Deterministic for a fixed
/// `(corpus, seed, depth, seqlen, weaken)` regardless of `jobs`.
pub fn run(dir: &Path, opts: &Options) -> Result<Report, String> {
    let cfg = weaken_config(&opts.weaken)?;
    let inputs = load_cases(dir)?;
    let jobs = opts.jobs.max(1).min(inputs.len().max(1));
    let mut indexed: Vec<(usize, CaseOutcome)> = if jobs <= 1 {
        inputs.iter().enumerate().map(|(i, case)| (i, score_case(case, opts, &cfg))).collect()
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..jobs {
                let inputs = &inputs;
                let cfg = &cfg;
                let opts_ref = &*opts;
                handles.push(scope.spawn(move || {
                    let mut part = Vec::new();
                    for (i, case) in inputs.iter().enumerate() {
                        if i % jobs == w {
                            part.push((i, score_case(case, opts_ref, cfg)));
                        }
                    }
                    part
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(part) => part,
                    // Re-raise a worker panic on the caller's thread so
                    // the failure keeps its original message.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    };
    // Striped workers cover each index exactly once; re-sort into corpus
    // order so the report is independent of completion order.
    indexed.sort_by_key(|(i, _)| *i);
    if indexed.len() != inputs.len() {
        return Err(format!("internal: scored {} of {} cases", indexed.len(), inputs.len()));
    }
    Ok(Report {
        options: opts.clone(),
        cases: indexed.into_iter().map(|(_, o)| o).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_dir() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
    }

    #[test]
    fn rd_meets_the_floor_on_the_shipped_corpus() {
        let report = run(&corpus_dir(), &Options::default()).expect("corpus scores");
        assert!(report.cases.len() >= 62, "corpus shrank: {}", report.cases.len());
        let rd = report.rd_percent();
        assert!(rd >= 95.0, "RD {rd} below floor; failures: {:?}", report.failures());
        // Every rule keeps a clean base scorecard under robustness too.
        for (rule, row) in report.per_rule() {
            assert_eq!(row.fn_, 0, "{rule} has base misses");
            assert_eq!(row.fp, 0, "{rule} has base noise");
        }
        // At least 9 transform kinds actually produced groups, including
        // the cross-file and aliasing ones.
        let per_t = report.per_transform();
        assert!(per_t.len() >= 9, "only {} transform kinds applied", per_t.len());
        for kind in ["alias", "dyncall", "xsplit"] {
            assert!(per_t.get(kind).is_some_and(|r| r.0 > 0), "{kind} produced no groups");
        }
    }

    #[test]
    fn weakened_rules_drop_rd() {
        let weak = Options {
            weaken: vec!["taint-indirection".into(), "taint-alias".into()],
            ..Options::default()
        };
        let report = run(&corpus_dir(), &weak).expect("corpus scores");
        let strong = run(&corpus_dir(), &Options::default()).expect("corpus scores");
        assert!(
            report.rd_percent() < strong.rd_percent(),
            "weakening changed nothing: {} vs {}",
            report.rd_percent(),
            strong.rd_percent()
        );
        // The damage concentrates on the taint rule.
        let row = &report.per_rule()["untracked-slice-taint"];
        assert!(row.robust < row.bases, "taint rule unaffected by weakening");
    }

    #[test]
    fn unknown_weaken_knob_is_rejected() {
        assert!(weaken_config(&["nonsense".to_string()]).is_err());
        assert!(weaken_config(&[]).is_ok());
    }

    #[test]
    fn jobs_do_not_change_the_report() {
        let serial = run(&corpus_dir(), &Options::default()).expect("serial");
        let parallel =
            run(&corpus_dir(), &Options { jobs: 4, ..Options::default() }).expect("parallel");
        assert_eq!(serial.table(), parallel.table());
        assert_eq!(serial.json().pretty(), parallel.json().pretty());
    }

    #[test]
    fn report_renders_both_formats_deterministically() {
        let a = run(&corpus_dir(), &Options::default()).expect("a");
        let b = run(&corpus_dir(), &Options::default()).expect("b");
        assert_eq!(a.table(), b.table());
        assert_eq!(a.json().pretty(), b.json().pretty());
        assert!(a.table().contains("rename"));
        assert!(a.json().pretty().contains("\"schema\": \"sgx-lint-robustness/1\""));
    }
}
