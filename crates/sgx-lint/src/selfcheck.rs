//! Self-consistency fuzz: the PR 6 variant generator turned on the
//! workspace's *own* sources (ROADMAP item 5).
//!
//! The robustness scorer ([`crate::robustness`]) mutates the labeled
//! corpus, where every case has a known verdict. This pass instead
//! mutates a pinned set of *clean* workspace files. The invariant is
//! one-sided but sharp: every transform in [`crate::variants`] is
//! semantics-preserving, so if a variant of a clean file produces any
//! finding, that finding is a rule **false positive** by construction —
//! no labeling required. CI runs this over a small pinned subset
//! (`DEFAULT_FILES`) so a rule change that starts keying on incidental
//! syntax (a name, an item order, a line adjacency) fails loudly.
//!
//! Preconditions, enforced with exit 2 (usage error, not FP): each
//! pinned file must analyze clean *solo*. Marker-bearing files are fair
//! game: every transform preserves marker/pragma line-adjacency (noise
//! never inserts after a comment-bearing line, reorder moves whole line
//! runs, xsplit replicates module-set pragmas into both halves), so a
//! suppression that holds on the base file must keep holding on every
//! variant — a variant finding is still a genuine FP, either in a rule
//! or in the generator's adjacency contract.
//!
//! Determinism: each file's variant stream is seeded with
//! `mix(seed, fnv1a(path))`, exactly like the robustness scorer, so the
//! report is a pure function of `(seed, sources)`.

use crate::semantic::Config;
use crate::variants::{self, fnv1a, mix, Transform};
use sgx_bench_core::json::Value;
use std::path::PathBuf;

/// The pinned CI subset: small, dependency-light library files that are
/// clean under solo analysis and exercise distinct rule families
/// (counter structs, percentile math, service spec/DES config types,
/// the variant generator's own RNG). `numa.rs` and `des.rs` are
/// deliberately marker- and pragma-bearing (charge-module with an
/// allow(charge-escape) waiver; des-module): they prove the transforms
/// keep marker/pragma adjacency intact. `cache.rs` and `fastdiv.rs`
/// cover the hot-path rewrite's packed-metadata cache and the
/// Lemire-style fastmod helper. Kept deliberately short — the full
/// workspace sweep is a manual `sgx-lint selfcheck crates/...` away.
pub const DEFAULT_FILES: [&str; 8] = [
    "crates/sgx-serve/src/counters.rs",
    "crates/sgx-serve/src/spec.rs",
    "crates/sgx-serve/src/costs.rs",
    "crates/sgx-bench-core/src/percentile.rs",
    "crates/sgx-sim/src/machine/numa.rs",
    "crates/sgx-serve/src/des.rs",
    "crates/sgx-sim/src/cache.rs",
    "crates/sgx-sim/src/fastdiv.rs",
];

/// Scorer options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Global seed for variant generation.
    pub seed: u64,
    /// Maximum wrapper indirection depth.
    pub depth: usize,
    /// Maximum `let`-chain length.
    pub seqlen: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options { seed: 42, depth: 2, seqlen: 3 }
    }
}

/// One false positive surfaced by the fuzz: a finding on a variant of a
/// clean file.
#[derive(Debug, Clone)]
pub struct FalsePositive {
    /// Workspace-relative path of the base file.
    pub file: String,
    /// Transform label, e.g. `compose[s123]`.
    pub variant: String,
    /// Rule that mis-fired.
    pub rule: String,
    /// Line in the *variant* text (for reproducing with --emit).
    pub line: u32,
    /// The finding message.
    pub message: String,
}

/// Per-file tally.
#[derive(Debug, Clone)]
pub struct FileOutcome {
    /// Workspace-relative path.
    pub file: String,
    /// Variants generated (inapplicable transforms are skipped).
    pub variants: usize,
    /// Variants that stayed clean.
    pub clean: usize,
}

/// The full selfcheck report.
#[derive(Debug)]
pub struct Report {
    /// Seed echoed for provenance.
    pub seed: u64,
    /// Per-file tallies in input order.
    pub files: Vec<FileOutcome>,
    /// Every rule false positive found.
    pub false_positives: Vec<FalsePositive>,
}

impl Report {
    /// Total variants checked.
    pub fn variants(&self) -> usize {
        self.files.iter().map(|f| f.variants).sum()
    }

    /// Aligned text rendering.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("sgx-lint selfcheck — seed {}\n", self.seed));
        for f in &self.files {
            out.push_str(&format!("  {:<48} {:>3} variants, {:>3} clean\n", f.file, f.variants, f.clean));
        }
        if self.false_positives.is_empty() {
            out.push_str(&format!(
                "{} variants of {} clean files: no rule false positives\n",
                self.variants(),
                self.files.len()
            ));
        } else {
            out.push_str(&format!("{} rule false positive(s):\n", self.false_positives.len()));
            for fp in &self.false_positives {
                out.push_str(&format!(
                    "  {} :: {} :: [{}] line {}: {}\n",
                    fp.file, fp.variant, fp.rule, fp.line, fp.message
                ));
            }
        }
        out
    }

    /// Deterministic JSON rendering through [`sgx_bench_core::json`].
    pub fn json(&self) -> Value {
        let files: Vec<Value> = self
            .files
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("file".into(), Value::Str(f.file.clone())),
                    ("variants".into(), Value::Num(f.variants as f64)),
                    ("clean".into(), Value::Num(f.clean as f64)),
                ])
            })
            .collect();
        let fps: Vec<Value> = self
            .false_positives
            .iter()
            .map(|fp| {
                Value::Obj(vec![
                    ("file".into(), Value::Str(fp.file.clone())),
                    ("variant".into(), Value::Str(fp.variant.clone())),
                    ("rule".into(), Value::Str(fp.rule.clone())),
                    ("line".into(), Value::Num(fp.line as f64)),
                    ("message".into(), Value::Str(fp.message.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str("sgx-lint-selfcheck/1".into())),
            ("seed".into(), Value::Num(self.seed as f64)),
            ("files".into(), Value::Arr(files)),
            ("variants".into(), Value::Num(self.variants() as f64)),
            ("false_positives".into(), Value::Arr(fps)),
        ])
    }
}

/// The variant plan for one file seed — the same shape the robustness
/// scorer uses, so a rule that survives the corpus gauntlet faces the
/// identical transforms here.
fn plan(file_seed: u64, opts: &Options) -> Vec<Transform> {
    let mut out = vec![
        Transform::Rename { seed: mix(file_seed, 11) },
        Transform::Rename { seed: mix(file_seed, 12) },
        Transform::Reorder { seed: mix(file_seed, 21) },
        Transform::Reorder { seed: mix(file_seed, 22) },
    ];
    for d in 1..=opts.depth {
        out.push(Transform::Wrap { depth: d });
    }
    for n in 2..=opts.seqlen {
        out.push(Transform::Seqlen { chain: n });
    }
    out.push(Transform::Nest { depth: 1 });
    out.push(Transform::Nest { depth: 2 });
    out.push(Transform::Noise { seed: mix(file_seed, 31) });
    out.push(Transform::Noise { seed: mix(file_seed, 32) });
    out.push(Transform::Alias { seed: mix(file_seed, 51) });
    out.push(Transform::Alias { seed: mix(file_seed, 52) });
    out.push(Transform::Dyncall);
    out.push(Transform::Xsplit { seed: mix(file_seed, 61) });
    out.push(Transform::Xsplit { seed: mix(file_seed, 62) });
    out.push(Transform::Compose { seed: mix(file_seed, 41) });
    out.push(Transform::Compose { seed: mix(file_seed, 42) });
    out
}

/// Run the fuzz over `files` (workspace-relative paths). `Err` means a
/// precondition failed — a missing file, a file that is not clean solo,
/// or one that leans on allow-markers — and maps to exit 2 in the CLI:
/// that is a selfcheck configuration error, not a rule false positive.
pub fn run(files: &[PathBuf], opts: &Options) -> Result<Report, String> {
    let cfg = Config::default();
    let mut outcomes = Vec::new();
    let mut false_positives = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("selfcheck: read {}: {e}", path.display()))?;
        let label = path.to_string_lossy().to_string();
        let class = crate::classify(path);
        let base = crate::analyze_single_cfg(&label, class, &src, &cfg);
        if !base.findings.is_empty() {
            let first = &base.findings[0];
            return Err(format!(
                "selfcheck: {label} is not clean under solo analysis \
                 ([{}] line {}: {}) — pin a clean file",
                first.rule, first.line, first.message
            ));
        }
        let file_seed = mix(opts.seed, fnv1a(&label));
        let mut generated = 0usize;
        let mut clean = 0usize;
        for t in plan(file_seed, opts) {
            let Some(files) = variants::apply_ws(&src, &t) else { continue };
            generated += 1;
            // Single-file variants analyze solo under the base label, as
            // before; cross-file variants (xsplit) form one workspace so
            // set-scoped rules see both halves together.
            let findings: Vec<crate::engine::Finding> = if let [(_, mutated)] = files.as_slice() {
                crate::analyze_single_cfg(&label, class, mutated, &cfg).findings
            } else {
                let entries = files
                    .iter()
                    .map(|(fname, text)| {
                        (PathBuf::from(format!("{label}::{fname}")), class, text.clone())
                    })
                    .collect();
                crate::analyze_set_cfg(entries, &cfg)
                    .into_iter()
                    .flat_map(|(_, r)| r.findings)
                    .collect()
            };
            if findings.is_empty() {
                clean += 1;
            } else {
                for f in &findings {
                    false_positives.push(FalsePositive {
                        file: label.clone(),
                        variant: t.label(),
                        rule: f.rule.clone(),
                        line: f.line,
                        message: f.message.clone(),
                    });
                }
            }
        }
        if generated == 0 {
            return Err(format!(
                "selfcheck: no transform applies to {label} — pin a file with \
                 renameable items"
            ));
        }
        outcomes.push(FileOutcome { file: label, variants: generated, clean });
    }
    if outcomes.is_empty() {
        return Err("selfcheck: no files given".to_string());
    }
    Ok(Report { seed: opts.seed, files: outcomes, false_positives })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/sgx-lint -> workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    fn default_paths() -> Vec<PathBuf> {
        DEFAULT_FILES.iter().map(|f| repo_root().join(f)).collect()
    }

    #[test]
    fn pinned_workspace_files_survive_the_fuzz() {
        let report = run(&default_paths(), &Options::default()).expect("preconditions hold");
        assert_eq!(report.files.len(), DEFAULT_FILES.len());
        assert!(report.variants() >= 3 * DEFAULT_FILES.len(), "too few variants generated");
        assert!(
            report.false_positives.is_empty(),
            "rule false positives on clean workspace variants:\n{}",
            report.table()
        );
    }

    #[test]
    fn report_is_deterministic_and_renders_both_formats() {
        let paths = default_paths();
        let a = run(&paths, &Options::default()).expect("a");
        let b = run(&paths, &Options::default()).expect("b");
        assert_eq!(a.table(), b.table());
        assert_eq!(a.json().pretty(), b.json().pretty());
        assert!(a.json().pretty().contains("\"schema\": \"sgx-lint-selfcheck/1\""));
    }

    #[test]
    fn dirty_files_are_rejected_but_marker_bearing_files_are_fuzzed() {
        let dir = std::env::temp_dir().join("sgx_lint_selfcheck_test");
        std::fs::create_dir_all(&dir).unwrap();
        let dirty = dir.join("lib.rs");
        std::fs::write(&dirty, "pub fn f(x: Option<u64>) -> u64 { x.unwrap() }\n").unwrap();
        let err = run(&[dirty], &Options::default()).unwrap_err();
        assert!(err.contains("not clean"), "unexpected error: {err}");

        // A file whose cleanliness *depends* on an allow-marker is in
        // scope now: the transforms keep marker adjacency, so every
        // variant must stay suppressed too.
        let marked = dir.join("marked.rs");
        std::fs::write(
            &marked,
            "// sgx-lint: allow(panic-in-library) test fixture\npub fn f(x: Option<u64>) -> u64 { x.unwrap() }\npub fn g() -> u64 { 1 }\npub fn h() -> u64 { g() + 1 }\n",
        )
        .unwrap();
        let report = run(&[marked], &Options::default()).expect("marker-bearing file is accepted");
        assert!(
            report.false_positives.is_empty(),
            "marker adjacency broke under a transform:\n{}",
            report.table()
        );
        assert!(report.variants() > 0);

        assert!(run(&[dir.join("missing.rs")], &Options::default()).is_err());
        assert!(run(&[], &Options::default()).is_err());
    }

    #[test]
    fn an_injected_false_positive_is_reported() {
        // A file that is clean but whose *rename* variant would only
        // mis-fire if a rule keyed on an incidental name. We can't force
        // a real FP without breaking a rule, so instead check the
        // plumbing end-to-end on a synthetic near-miss: a clean file
        // passes, and the report counts every generated variant.
        let dir = std::env::temp_dir().join("sgx_lint_selfcheck_clean");
        std::fs::create_dir_all(&dir).unwrap();
        let clean = dir.join("clean.rs");
        std::fs::write(
            &clean,
            "pub fn double(v: u64) -> u64 { v * 2 }\npub fn triple(v: u64) -> u64 { v * 3 }\npub fn combine(a: u64, b: u64) -> u64 { double(a) + triple(b) }\n",
        )
        .unwrap();
        let report = run(&[clean], &Options::default()).expect("clean file passes");
        assert_eq!(report.files.len(), 1);
        assert_eq!(report.files[0].clean, report.files[0].variants);
        assert!(report.false_positives.is_empty());
    }
}
