//! Rule engine: applies the six model-integrity rules to a tokenized
//! file, honoring `#[cfg(test)]` regions and allow-markers.

use crate::tokenizer::{tokenize, Comment, Lexed, Tok, TokKind};
use std::collections::BTreeMap;

/// The rule names, in reporting order. The first six are token-level
/// (this module); the last six are semantic, backed by the cross-file
/// call graph ([`crate::semantic`]) and the dataflow extraction
/// ([`crate::dataflow`]).
pub const RULES: [&str; 12] = [
    "untracked-access",
    "nondeterminism",
    "counter-truncation",
    "panic-in-library",
    "unsafe-code",
    "swallowed-error",
    "untracked-slice-taint",
    "counter-conservation",
    "fault-tick-coverage",
    "calibration-provenance",
    "charge-escape",
    "des-invariant",
];

/// Pseudo-rule reported for malformed/unknown allow-markers. Not
/// suppressible — the fix is to correct the marker.
pub const BAD_MARKER: &str = "bad-allow-marker";

/// How a file's code is used — decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code of an operator crate (joins/scans/index/tpch/microbench).
    OperatorLib,
    /// Library code of any other crate (sim, bench-core, lint itself).
    Lib,
    /// Binary code (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Test/bench/example code (plus `#[cfg(test)]` regions of any file).
    Test,
}

/// One lint finding. The derived ordering (path, line, rule, message) is
/// the canonical report order; identical findings dedupe away.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// File the finding is in (as passed to the analyzer).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (one of [`RULES`] or [`BAD_MARKER`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Per-file analysis result.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived allow-marker suppression.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a reasoned allow-marker.
    pub suppressed: usize,
}

/// Parsed `sgx-lint:` markers of one file.
#[derive(Debug, Default)]
pub(crate) struct Markers {
    /// Well-formed `allow(<rule>) <reason>` markers as `(line, rule)`.
    pub allows: Vec<(u32, String)>,
    /// File carries the `calibration-file` pragma (opts into the
    /// calibration-provenance rule).
    pub calibration_file: bool,
    /// File carries the `fault-tick-module` pragma (joins the
    /// fault-tick-coverage module set even without defining `fault_tick`).
    pub fault_tick_module: bool,
    /// File carries the `charge-module` pragma (joins the charge-escape
    /// module set: every compound cycle/clock/counter mutation must reach
    /// `commit` through in-set call chains).
    pub charge_module: bool,
    /// File carries the `des-module` pragma (opts into the des-invariant
    /// rule: event totality, counter↔reconcile coverage, no ambient
    /// entropy).
    pub des_module: bool,
}

/// Parse `sgx-lint:` markers out of the comments; malformed markers become
/// findings immediately.
pub(crate) fn parse_markers(
    path: &str,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Markers {
    let mut markers = Markers::default();
    for c in comments {
        // Only comments that *start* with the marker count — prose that
        // merely mentions the syntax (docs, this file) is not a marker.
        let Some(rest) = c.text.trim_start().strip_prefix("sgx-lint:") else { continue };
        let rest = rest.trim_start();
        let bad = |msg: &str, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                path: path.to_string(),
                line: c.line,
                rule: BAD_MARKER.to_string(),
                message: msg.to_string(),
            });
        };
        // File pragma: marks a calibration file whose numeric constants
        // must carry `paper:`/`uarch:` provenance comments.
        if rest == "calibration-file" || rest.starts_with("calibration-file ") {
            markers.calibration_file = true;
            continue;
        }
        // File pragma: opts the file into the fault-tick-coverage module
        // set (cycle-charging layers of a split-up machine).
        if rest == "fault-tick-module" || rest.starts_with("fault-tick-module ") {
            markers.fault_tick_module = true;
            continue;
        }
        // File pragma: opts the file into the charge-escape module set
        // (layers whose cycle charges must flow through `commit`).
        if rest == "charge-module" || rest.starts_with("charge-module ") {
            markers.charge_module = true;
            continue;
        }
        // File pragma: opts the file into the des-invariant rule (the
        // deterministic discrete-event service engine).
        if rest == "des-module" || rest.starts_with("des-module ") {
            markers.des_module = true;
            continue;
        }
        let Some(args) = rest.strip_prefix("allow(") else {
            bad("marker must be `sgx-lint: allow(<rule>) <reason>` or a file pragma (`sgx-lint: calibration-file`, `fault-tick-module`, `charge-module`, `des-module`)", findings);
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("allow-marker missing closing parenthesis", findings);
            continue;
        };
        let rule = args[..close].trim();
        let reason = args[close + 1..].trim();
        if !RULES.contains(&rule) {
            bad(&format!("unknown rule {rule:?} in allow-marker"), findings);
            continue;
        }
        if reason.is_empty() {
            bad(&format!("allow({rule}) marker needs a reason"), findings);
            continue;
        }
        markers.allows.push((c.line, rule.to_string()));
    }
    markers
}

/// Mark tokens inside `#[cfg(test)] … { … }` regions and `#[test] fn`
/// bodies as test code.
pub(crate) fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let is = |t: &Tok, s: &str| t.kind == TokKind::Ident && t.text == s;
    let p = |t: &Tok, c: u8| t.kind == TokKind::Punct(c);
    let mut i = 0usize;
    while i < toks.len() {
        // `#[cfg(test)]` or `#[test]` (also matches inside larger attr
        // lists like `#[cfg(test)]`-gated impls).
        let cfg_test = i + 6 < toks.len()
            && p(&toks[i], b'#')
            && p(&toks[i + 1], b'[')
            && is(&toks[i + 2], "cfg")
            && p(&toks[i + 3], b'(')
            && is(&toks[i + 4], "test")
            && p(&toks[i + 5], b')')
            && p(&toks[i + 6], b']');
        let plain_test = i + 3 < toks.len()
            && p(&toks[i], b'#')
            && p(&toks[i + 1], b'[')
            && is(&toks[i + 2], "test")
            && p(&toks[i + 3], b']');
        if cfg_test || plain_test {
            // Skip forward to the next `{` and mask the balanced region.
            let mut j = i;
            while j < toks.len() && !p(&toks[j], b'{') {
                mask[j] = true;
                j += 1;
            }
            let mut depth = 0i32;
            while j < toks.len() {
                mask[j] = true;
                if p(&toks[j], b'{') {
                    depth += 1;
                } else if p(&toks[j], b'}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Narrow integer types whose `as` casts truncate u64 counters.
pub(crate) const NARROW_INTS: [&str; 8] = ["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// Method/function names that conventionally return `Result` in this
/// workspace and std — discarding them with `let _ =` swallows the error.
/// Names like `get` that are usually infallible are deliberately absent;
/// the rule trades recall for a zero false-positive corpus.
pub(crate) const FALLIBLE_CALLS: [&str; 16] = [
    "parse",
    "write",
    "write_all",
    "writeln",
    "flush",
    "sync_all",
    "create_dir_all",
    "remove_file",
    "remove_dir_all",
    "rename",
    "copy",
    "send",
    "recv",
    "from_json",
    "read_to_string",
    "read_exact",
];

/// Is the identifier at `i` actually invoked — `name(` or turbofish
/// `name::<T>(`? Bounded lookahead so a stray `<` cannot run away.
fn is_called(toks: &[Tok], i: usize) -> bool {
    let p = |t: &Tok, c: u8| t.kind == TokKind::Punct(c);
    if toks.get(i + 1).is_some_and(|t| p(t, b'(')) {
        return true;
    }
    // `name :: < ... > (`
    if !(toks.get(i + 1).is_some_and(|t| p(t, b':'))
        && toks.get(i + 2).is_some_and(|t| p(t, b':'))
        && toks.get(i + 3).is_some_and(|t| p(t, b'<')))
    {
        return false;
    }
    let mut depth = 0i32;
    for j in i + 3..(i + 24).min(toks.len()) {
        if p(&toks[j], b'<') {
            depth += 1;
        } else if p(&toks[j], b'>') {
            depth -= 1;
            if depth == 0 {
                return toks.get(j + 1).is_some_and(|t| p(t, b'('));
            }
        }
    }
    false
}

/// Backward scan from the `.` of a trailing `.ok();`: is the expression a
/// whole discarded statement (true), or is its value bound/returned
/// (false)? Statement boundaries are `;`/`{`/`}`; any `=`, `let`,
/// `return`, `break`, or `match`/closure arrow on the way means the value
/// is consumed.
fn statement_discards(toks: &[Tok], dot: usize) -> bool {
    let p = |t: &Tok, c: u8| t.kind == TokKind::Punct(c);
    let mut k = dot;
    for _ in 0..200 {
        if k == 0 {
            return true;
        }
        k -= 1;
        let t = &toks[k];
        if p(t, b';') || p(t, b'{') || p(t, b'}') {
            return true;
        }
        if p(t, b'=')
            || (t.kind == TokKind::Ident && matches!(t.text.as_str(), "let" | "return" | "break"))
        {
            return false;
        }
    }
    false
}

/// Does this identifier plausibly name a cycle/byte counter?
pub(crate) fn counter_ish(ident: &str) -> bool {
    let l = ident.to_ascii_lowercase();
    l.contains("cycle") || l.contains("counter") || l.contains("bytes") || l == "elapsed"
}

/// Analyze one file's source with the token-level rules. `path` is only
/// used for labeling findings. Semantic rules are NOT run here — use
/// [`crate::analyze_single`] or [`crate::analyze_paths`] for the full
/// pass.
pub fn analyze_source(path: &str, class: FileClass, src: &str) -> FileReport {
    analyze_lexed(path, class, &tokenize(src))
}

/// Token-rule pass over an already-lexed file (so workspace scans lex each
/// file exactly once).
pub fn analyze_lexed(path: &str, class: FileClass, lexed: &Lexed) -> FileReport {
    let toks = &lexed.tokens;
    let in_test = test_mask(toks);
    let mut raw: Vec<Finding> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    let markers = parse_markers(path, &lexed.comments, &mut findings);

    let hit = |raw: &mut Vec<Finding>, line: u32, rule: &str, message: String| {
        raw.push(Finding { path: path.to_string(), line, rule: rule.to_string(), message });
    };
    let is = |t: &Tok, s: &str| t.kind == TokKind::Ident && t.text == s;
    let p = |t: &Tok, c: u8| t.kind == TokKind::Punct(c);

    let lib_like = matches!(class, FileClass::OperatorLib | FileClass::Lib | FileClass::Bin);
    let panic_applies = matches!(class, FileClass::OperatorLib | FileClass::Lib);

    for (i, t) in toks.iter().enumerate() {
        // unsafe-code applies everywhere, including test regions.
        if is(t, "unsafe") {
            hit(&mut raw, t.line, "unsafe-code", "`unsafe` block/fn/impl — the simulator workspace is safe Rust by contract".into());
            continue;
        }
        if in_test[i] || class == FileClass::Test {
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // --- untracked-access (operator library code only) ---
            "as_slice_untracked" | "as_mut_slice_untracked" if class == FileClass::OperatorLib => {
                hit(
                    &mut raw,
                    t.line,
                    "untracked-access",
                    format!(
                        "`{}` bypasses the SimVec event stream — operator hot paths must use charged accessors (get/set/stream_*)",
                        t.text
                    ),
                );
            }
            // --- nondeterminism (all non-test code) ---
            "thread_rng" | "ThreadRng" | "from_entropy" | "random_seed" if lib_like => {
                hit(&mut raw, t.line, "nondeterminism", format!("`{}` draws OS entropy — seed a `StdRng::seed_from_u64` instead so runs are reproducible", t.text));
            }
            "Instant" | "SystemTime" if lib_like => {
                hit(&mut raw, t.line, "nondeterminism", format!("`{}` reads the wall clock — the cycle model, not host time, is the measurement instrument", t.text));
            }
            "HashMap" | "HashSet" if lib_like => {
                hit(&mut raw, t.line, "nondeterminism", format!("default-hasher `{}` has run-dependent iteration order (RandomState) — use BTreeMap/BTreeSet or annotate why order is never observed", t.text));
            }
            "RandomState" if lib_like => {
                hit(&mut raw, t.line, "nondeterminism", "`RandomState` is seeded from OS entropy per process".into());
            }
            // --- counter-truncation (all non-test code) ---
            "as" if lib_like => {
                let Some(ty) = toks.get(i + 1) else { continue };
                if ty.kind != TokKind::Ident || !NARROW_INTS.contains(&ty.text.as_str()) {
                    continue;
                }
                // Look back a short window on the same statement for a
                // counter-ish identifier feeding the cast.
                let mut k = i;
                let mut seen = 0;
                let mut culprit: Option<&str> = None;
                while k > 0 && seen < 8 {
                    k -= 1;
                    let prev = &toks[k];
                    if prev.line != t.line || matches!(prev.kind, TokKind::Punct(b';') | TokKind::Punct(b'{')) {
                        break;
                    }
                    if prev.kind == TokKind::Ident {
                        seen += 1;
                        if counter_ish(&prev.text) {
                            culprit = Some(&prev.text);
                            break;
                        }
                    }
                }
                if let Some(name) = culprit {
                    hit(
                        &mut raw,
                        t.line,
                        "counter-truncation",
                        format!("`{name} as {}` narrows a u64 cycle/byte counter — keep counters 64-bit (or cast to f64 for ratios)", ty.text),
                    );
                }
            }
            // --- panic-in-library (library code only) ---
            "unwrap" | "expect" if panic_applies => {
                // Method position only: `.unwrap(` / `.expect(`.
                let dotted = i > 0 && p(&toks[i - 1], b'.');
                let called = toks.get(i + 1).is_some_and(|n| p(n, b'('));
                if dotted && called {
                    hit(&mut raw, t.line, "panic-in-library", format!("`.{}()` can panic in library code — propagate a Result or document the invariant with an allow-marker", t.text));
                }
            }
            "panic" | "todo" | "unimplemented" if panic_applies => {
                if toks.get(i + 1).is_some_and(|n| p(n, b'!')) {
                    hit(&mut raw, t.line, "panic-in-library", format!("`{}!` aborts the simulation from library code — return an error or document why it is unreachable", t.text));
                }
            }
            // --- swallowed-error (library code only) ---
            // Pattern A: `let _ = <fallible call>(...);` discards a Result.
            "let" if panic_applies => {
                let underscore = toks.get(i + 1).is_some_and(|n| is(n, "_"));
                let assigned = toks.get(i + 2).is_some_and(|n| p(n, b'='));
                if !(underscore && assigned) {
                    continue;
                }
                for j in i + 3..(i + 64).min(toks.len()) {
                    if p(&toks[j], b';') {
                        break;
                    }
                    if toks[j].kind != TokKind::Ident {
                        continue;
                    }
                    // `write!`/`writeln!` into a String are infallible fmt
                    // macros — a macro invocation is not a fallible call.
                    if toks.get(j + 1).is_some_and(|n| p(n, b'!')) {
                        continue;
                    }
                    let name = toks[j].text.as_str();
                    let fallible = FALLIBLE_CALLS.contains(&name) || name.starts_with("try_");
                    if fallible && is_called(toks, j) {
                        hit(
                            &mut raw,
                            t.line,
                            "swallowed-error",
                            format!("`let _ = …{name}(…)` discards a Result in library code — handle the error or add a reasoned allow-marker"),
                        );
                        break;
                    }
                }
            }
            // Pattern B: a bare trailing `.ok();` swallows a Result.
            "ok" if panic_applies => {
                let dotted = i > 0 && p(&toks[i - 1], b'.');
                let bare_call = toks.get(i + 1).is_some_and(|n| p(n, b'('))
                    && toks.get(i + 2).is_some_and(|n| p(n, b')'))
                    && toks.get(i + 3).is_some_and(|n| p(n, b';'));
                if dotted && bare_call && statement_discards(toks, i - 1) {
                    hit(
                        &mut raw,
                        t.line,
                        "swallowed-error",
                        "bare `.ok();` silently swallows a Result in library code — handle the error or add a reasoned allow-marker".into(),
                    );
                }
            }
            _ => {}
        }
    }

    // Apply allow-markers: a marker suppresses findings of its rule on the
    // marker's own line and the line directly below it.
    let mut allowed: BTreeMap<(u32, &str), ()> = BTreeMap::new();
    for (line, rule) in &markers.allows {
        allowed.insert((*line, rule.as_str()), ());
        allowed.insert((*line + 1, rule.as_str()), ());
    }
    let mut suppressed = 0usize;
    for f in raw {
        if allowed.contains_key(&(f.line, f.rule.as_str())) {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    FileReport { findings, suppressed }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(report: &FileReport) -> Vec<&str> {
        report.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn untracked_access_only_in_operator_crates() {
        let src = "pub fn hot(v: &SimVec<u32>) -> u32 { v.as_slice_untracked()[0] }";
        let op = analyze_source("x.rs", FileClass::OperatorLib, src);
        assert_eq!(rules_of(&op), ["untracked-access"]);
        let lib = analyze_source("x.rs", FileClass::Lib, src);
        assert!(lib.findings.is_empty(), "sim-internal use is legitimate");
    }

    #[test]
    fn allow_marker_suppresses_same_and_next_line() {
        let src = "\
// sgx-lint: allow(nondeterminism) insert-only set, order never observed
use std::collections::HashSet;
";
        let r = analyze_source("x.rs", FileClass::Lib, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn marker_without_reason_is_a_finding() {
        let src = "let x = 1; // sgx-lint: allow(unsafe-code)\n";
        let r = analyze_source("x.rs", FileClass::Lib, src);
        assert_eq!(rules_of(&r), [BAD_MARKER]);
        let unk = analyze_source("x.rs", FileClass::Lib, "// sgx-lint: allow(no-such-rule) because\n");
        assert_eq!(rules_of(&unk), [BAD_MARKER]);
    }

    #[test]
    fn cfg_test_regions_are_exempt_except_unsafe() {
        let src = "\
#[cfg(test)]
mod tests {
    fn f() { let t = std::time::Instant::now(); t.elapsed(); x.unwrap(); }
}
";
        let r = analyze_source("x.rs", FileClass::Lib, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        let with_unsafe = format!("{src}\n#[cfg(test)]\nmod t2 {{ fn g() {{ unsafe {{ }} }} }}\n");
        let r2 = analyze_source("x.rs", FileClass::Lib, &with_unsafe);
        assert_eq!(rules_of(&r2), ["unsafe-code"]);
    }

    #[test]
    fn counter_truncation_needs_a_counter_ish_source() {
        let flagged = analyze_source(
            "x.rs",
            FileClass::Lib,
            "fn f(c: &Counters) -> u32 { c.cycles as u32 }",
        );
        assert_eq!(rules_of(&flagged), ["counter-truncation"]);
        let fine = analyze_source("x.rs", FileClass::Lib, "fn f(i: u64) -> usize { i as usize }");
        assert!(fine.findings.is_empty());
        let f64_ok =
            analyze_source("x.rs", FileClass::Lib, "fn f(c: u64) -> f64 { c.cycles as f64 }");
        assert!(f64_ok.findings.is_empty());
    }

    #[test]
    fn panic_rule_details() {
        let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }";
        assert_eq!(rules_of(&analyze_source("x.rs", FileClass::Lib, src)), ["panic-in-library"]);
        assert!(analyze_source("x.rs", FileClass::Bin, src).findings.is_empty());
        // `unwrap_or` must not match.
        let or = "fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }";
        assert!(analyze_source("x.rs", FileClass::Lib, or).findings.is_empty());
        let mac = "fn f() { panic!(\"boom\") }";
        assert_eq!(rules_of(&analyze_source("x.rs", FileClass::Lib, mac)), ["panic-in-library"]);
    }

    #[test]
    fn swallowed_error_fires_on_discarded_results() {
        let direct = "fn f(s: &str) { let _ = s.parse::<u32>(); }";
        assert_eq!(rules_of(&analyze_source("x.rs", FileClass::Lib, direct)), ["swallowed-error"]);
        let io = "fn f(mut w: impl std::io::Write, b: &[u8]) { let _ = w.write_all(b); }";
        assert_eq!(rules_of(&analyze_source("x.rs", FileClass::Lib, io)), ["swallowed-error"]);
        let try_prefix = "fn f(m: &Machine) { let _ = m.try_reserve(4); }";
        assert_eq!(
            rules_of(&analyze_source("x.rs", FileClass::Lib, try_prefix)),
            ["swallowed-error"]
        );
        let bare_ok = "fn f() { std::fs::remove_file(\"x\").ok(); }";
        assert_eq!(rules_of(&analyze_source("x.rs", FileClass::Lib, bare_ok)), ["swallowed-error"]);
    }

    #[test]
    fn swallowed_error_stays_silent_on_legitimate_discards() {
        // fmt::Write into a String is infallible — the idiom all through
        // report.rs.
        let fmt = "fn f(out: &mut String) { let _ = writeln!(out, \"x\"); let _ = write!(out, \"y\"); }";
        assert!(analyze_source("x.rs", FileClass::Lib, fmt).findings.is_empty());
        // Charged-access discard: `get` is not a fallible call.
        let charged = "fn f(c: &mut Core, v: &SimVec<u64>) { let _ = v.get(c, 0); }";
        assert!(analyze_source("x.rs", FileClass::Lib, charged).findings.is_empty());
        // Bound `.ok()` converts, it does not swallow.
        let bound = "fn f(s: &str) -> Option<u32> { let v = s.parse().ok(); v }";
        assert!(analyze_source("x.rs", FileClass::Lib, bound).findings.is_empty());
        let returned = "fn f(s: &str) -> Option<u32> { return s.parse().ok(); }";
        assert!(analyze_source("x.rs", FileClass::Lib, returned).findings.is_empty());
        // Binaries and tests are out of scope.
        let src = "fn f(s: &str) { let _ = s.parse::<u32>(); }";
        assert!(analyze_source("x.rs", FileClass::Bin, src).findings.is_empty());
        assert!(analyze_source("x.rs", FileClass::Test, src).findings.is_empty());
        // A reasoned allow-marker suppresses.
        let allowed = "\
// sgx-lint: allow(swallowed-error) best-effort cleanup, failure is benign
fn f() { std::fs::remove_file(\"x\").ok(); }
";
        let r = analyze_source("x.rs", FileClass::Lib, allowed);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn string_and_comment_content_never_fires() {
        let src = "// thread_rng Instant unsafe unwrap\nfn f() -> &'static str { \"HashMap panic! unsafe\" }";
        let r = analyze_source("x.rs", FileClass::Lib, src);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
