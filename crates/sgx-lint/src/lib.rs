//! # sgx-lint — model-integrity & determinism static analysis
//!
//! The whole reproduction rests on one invariant (DESIGN.md §1 "Honesty
//! note"): every byte an operator touches must flow through the
//! `SimVec`/machine event stream, deterministically. One raw-slice loop or
//! one `thread_rng()` silently de-calibrates every figure derived from the
//! cost model. This crate is a dependency-free static-analysis pass over
//! the workspace's own sources that mechanically enforces that invariant.
//!
//! ## Rules
//!
//! | rule | what it flags |
//! |------|---------------|
//! | `untracked-access` | `as_slice_untracked`/`as_mut_slice_untracked` in operator-crate library code (bypasses the event stream) |
//! | `nondeterminism` | `thread_rng`, `Instant`/`SystemTime`, default-hasher `HashMap`/`HashSet` in library code |
//! | `counter-truncation` | narrowing `as u32`/`as usize`/… casts applied to cycle/byte counters |
//! | `panic-in-library` | `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | `unsafe-code` | any `unsafe` outside the allow-list (everywhere, including tests) |
//! | `swallowed-error` | `let _ = <fallible call>(…)` and bare `.ok();` in non-test library code (discards a Result) |
//! | `untracked-slice-taint` | a slice born from `as_slice_untracked` flowing into a function that indexes/iterates it (cross-file call-graph taint) |
//! | `counter-conservation` | `Counters`/`CategoryCycles` fields never written (dead) or never read outside the defining crate (unattributed) — impl blocks behind `type` aliases resolve to the underlying struct |
//! | `fault-tick-coverage` | cycle-charging functions in the fault-tick module set (`fault_tick`-defining files + `// sgx-lint: fault-tick-module` files) that never reach `fault_tick` |
//! | `calibration-provenance` | numeric constants in `// sgx-lint: calibration-file` files without a `paper:`/`uarch:` comment |
//! | `charge-escape` | compound cycle/clock/counter mutations in `// sgx-lint: charge-module` files that never reach `Core::commit` through the in-set call closure (a charge bypassing the choke point) |
//! | `des-invariant` | in `// sgx-lint: des-module` files: enqueued `*Kind` event variants without an explicit event-loop arm, `*Counters` field increments absent from every `reconcile` conservation check, and ambient entropy sources |
//!
//! The first six rules are token-level and per-file; the last six are
//! *semantic*: [`analyze_paths`] lexes and item-parses every file once,
//! builds a workspace-wide symbol table and call graph ([`graph`]), runs
//! the dataflow extraction ([`dataflow`]) where a rule needs def-use or
//! field-write detail, and runs the semantic pass ([`semantic`]) across
//! file boundaries.
//!
//! A finding is suppressed by an allow-marker comment on the same or the
//! preceding line, with a mandatory reason:
//!
//! ```text
//! // sgx-lint: allow(nondeterminism) insert-only set, iteration order never observed
//! ```
//!
//! Run as `cargo run -p sgx-lint -- [--format text|json] [--baseline
//! file.json] [paths...]` (default scan root: `crates`), or score the
//! bundled corpus with
//! `cargo run -p sgx-lint -- --score-corpus crates/sgx-lint/corpus`.
//! `--format json` renders through `sgx_bench_core::json` and is
//! byte-identical across runs; `--baseline` applies a checked-in waiver
//! file and reports stale entries as `stale-baseline` findings.
//!
//! Deliberately out of scope: `SimVec::peek`/`poke`. Those are the
//! documented single-element *setup* accessors (data generation,
//! verification) and the codebase uses them pervasively outside timed
//! regions; flagging them would drown the signal. The `as_slice_untracked`
//! rename exists precisely so the bulk escape hatch is grep- and
//! lint-visible while `peek`/`poke` stay cheap to audit by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod corpus;
pub mod dataflow;
pub mod engine;
pub mod graph;
pub mod parse;
pub mod robustness;
pub mod selfcheck;
pub mod semantic;
pub mod tokenizer;
pub mod variants;

pub use engine::{analyze_source, FileClass, FileReport, Finding, RULES};

use std::path::{Path, PathBuf};

/// Crates whose library code runs operator hot paths (subject to the
/// `untracked-access` rule).
pub const OPERATOR_CRATES: [&str; 5] =
    ["sgx-joins", "sgx-scans", "sgx-index", "sgx-tpch", "sgx-microbench"];

/// Classify a workspace-relative path the way the engine expects.
///
/// * anything under a `tests/`, `benches/` or `examples/` component (or a
///   `#[cfg(test)]` region, handled later by the engine) → [`FileClass::Test`]
/// * `src/bin/**` or `src/main.rs` → [`FileClass::Bin`]
/// * library code of an operator crate → [`FileClass::OperatorLib`]
/// * everything else → [`FileClass::Lib`]
pub fn classify(path: &Path) -> FileClass {
    let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    if comps.iter().any(|c| matches!(*c, "tests" | "benches" | "examples" | "corpus")) {
        return FileClass::Test;
    }
    if comps.windows(2).any(|w| w == ["src", "bin"]) || comps.ends_with(&["src", "main.rs"]) {
        return FileClass::Bin;
    }
    let is_operator = comps
        .windows(2)
        .any(|w| w[0] == "crates" && OPERATOR_CRATES.contains(&w[1]));
    if is_operator {
        FileClass::OperatorLib
    } else {
        FileClass::Lib
    }
}

/// Collect all `.rs` files under `root` (or `root` itself if it is a
/// file), in deterministic lexicographic order, skipping `target/`,
/// `corpus/` and hidden directories.
pub fn collect_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn walk(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else { return };
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        let name = child.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if child.is_dir() && matches!(name, "target" | "corpus") || name.starts_with('.') {
            continue;
        }
        walk(&child, out);
    }
}

/// Analyze every `.rs` file under `roots`: the token rules per file plus
/// the semantic rules across the whole scanned set. Reports come back in
/// deterministic path order; within a file, findings are sorted by
/// (line, rule, message) and deduplicated. Paths are classified with
/// [`classify`].
pub fn analyze_paths(roots: &[PathBuf]) -> Vec<(PathBuf, FileReport)> {
    let mut entries: Vec<(PathBuf, FileClass, String)> = Vec::new();
    for root in roots {
        for file in collect_rust_files(root) {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            let class = classify(&file);
            entries.push((file, class, src));
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries.dedup_by(|a, b| a.0 == b.0);
    let ws = graph::Workspace::build(entries);
    finish(ws)
}

/// Full analysis (token + semantic) of one in-memory file — the corpus
/// scorer's entry point. The single file forms its own workspace, so the
/// semantic rules run in their single-crate fallback modes.
pub fn analyze_single(label: &str, class: FileClass, src: &str) -> FileReport {
    analyze_single_cfg(label, class, src, &semantic::Config::default())
}

/// [`analyze_single`] under an explicit semantic [`semantic::Config`] —
/// the robustness scorer's entry point (its `--weaken` knobs need to run
/// the whole corpus under a deliberately degraded rule set).
pub fn analyze_single_cfg(
    label: &str,
    class: FileClass,
    src: &str,
    cfg: &semantic::Config,
) -> FileReport {
    let ws = graph::Workspace::build(vec![(PathBuf::from(label), class, src.to_string())]);
    finish_cfg(ws, cfg).pop().map(|(_, r)| r).unwrap_or_default()
}

/// Full analysis of a set of in-memory files forming one workspace — the
/// robustness scorer's entry point for *multi-file variant workspaces*
/// (a cross-file variant splits one corpus case over several files; the
/// verdict must see them together). Reports come back in input order.
pub fn analyze_set_cfg(
    entries: Vec<(PathBuf, FileClass, String)>,
    cfg: &semantic::Config,
) -> Vec<(PathBuf, FileReport)> {
    let ws = graph::Workspace::build(entries);
    finish_cfg(ws, cfg)
}

/// Run both passes over a built workspace and merge per-file reports.
fn finish(ws: graph::Workspace) -> Vec<(PathBuf, FileReport)> {
    finish_cfg(ws, &semantic::Config::default())
}

fn finish_cfg(ws: graph::Workspace, cfg: &semantic::Config) -> Vec<(PathBuf, FileReport)> {
    let mut reports: Vec<(PathBuf, FileReport)> = ws
        .files
        .iter()
        .map(|f| (f.path.clone(), engine::analyze_lexed(&f.label, f.class, &f.lexed)))
        .collect();
    for (fi, finding) in semantic::run_cfg(&ws, cfg) {
        let report = &mut reports[fi].1;
        if ws.allowed(fi, finding.line, &finding.rule) {
            report.suppressed += 1;
        } else {
            report.findings.push(finding);
        }
    }
    for (_, report) in &mut reports {
        report.findings.sort();
        report.findings.dedup();
    }
    reports
}
