//! # sgx-lint — model-integrity & determinism static analysis
//!
//! The whole reproduction rests on one invariant (DESIGN.md §1 "Honesty
//! note"): every byte an operator touches must flow through the
//! `SimVec`/machine event stream, deterministically. One raw-slice loop or
//! one `thread_rng()` silently de-calibrates every figure derived from the
//! cost model. This crate is a dependency-free static-analysis pass over
//! the workspace's own sources that mechanically enforces that invariant.
//!
//! ## Rules
//!
//! | rule | what it flags |
//! |------|---------------|
//! | `untracked-access` | `as_slice_untracked`/`as_mut_slice_untracked` in operator-crate library code (bypasses the event stream) |
//! | `nondeterminism` | `thread_rng`, `Instant`/`SystemTime`, default-hasher `HashMap`/`HashSet` in library code |
//! | `counter-truncation` | narrowing `as u32`/`as usize`/… casts applied to cycle/byte counters |
//! | `panic-in-library` | `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in non-test library code |
//! | `unsafe-code` | any `unsafe` outside the allow-list (everywhere, including tests) |
//! | `swallowed-error` | `let _ = <fallible call>(…)` and bare `.ok();` in non-test library code (discards a Result) |
//!
//! A finding is suppressed by an allow-marker comment on the same or the
//! preceding line, with a mandatory reason:
//!
//! ```text
//! // sgx-lint: allow(nondeterminism) insert-only set, iteration order never observed
//! ```
//!
//! Run as `cargo run -p sgx-lint -- [--json] [paths...]` (default scan
//! root: `crates`), or score the bundled corpus with
//! `cargo run -p sgx-lint -- --score-corpus crates/sgx-lint/corpus`.
//!
//! Deliberately out of scope: `SimVec::peek`/`poke`. Those are the
//! documented single-element *setup* accessors (data generation,
//! verification) and the codebase uses them pervasively outside timed
//! regions; flagging them would drown the signal. The `as_slice_untracked`
//! rename exists precisely so the bulk escape hatch is grep- and
//! lint-visible while `peek`/`poke` stay cheap to audit by hand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod corpus;
pub mod engine;
pub mod tokenizer;

pub use engine::{analyze_source, FileClass, FileReport, Finding, RULES};

use std::path::{Path, PathBuf};

/// Crates whose library code runs operator hot paths (subject to the
/// `untracked-access` rule).
pub const OPERATOR_CRATES: [&str; 5] =
    ["sgx-joins", "sgx-scans", "sgx-index", "sgx-tpch", "sgx-microbench"];

/// Classify a workspace-relative path the way the engine expects.
///
/// * anything under a `tests/`, `benches/` or `examples/` component (or a
///   `#[cfg(test)]` region, handled later by the engine) → [`FileClass::Test`]
/// * `src/bin/**` or `src/main.rs` → [`FileClass::Bin`]
/// * library code of an operator crate → [`FileClass::OperatorLib`]
/// * everything else → [`FileClass::Lib`]
pub fn classify(path: &Path) -> FileClass {
    let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    if comps.iter().any(|c| matches!(*c, "tests" | "benches" | "examples" | "corpus")) {
        return FileClass::Test;
    }
    if comps.windows(2).any(|w| w == ["src", "bin"]) || comps.ends_with(&["src", "main.rs"]) {
        return FileClass::Bin;
    }
    let is_operator = comps
        .windows(2)
        .any(|w| w[0] == "crates" && OPERATOR_CRATES.contains(&w[1]));
    if is_operator {
        FileClass::OperatorLib
    } else {
        FileClass::Lib
    }
}

/// Collect all `.rs` files under `root` (or `root` itself if it is a
/// file), in deterministic lexicographic order, skipping `target/`,
/// `corpus/` and hidden directories.
pub fn collect_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn walk(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else { return };
    let mut children: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        let name = child.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if child.is_dir() && matches!(name, "target" | "corpus") || name.starts_with('.') {
            continue;
        }
        walk(&child, out);
    }
}

/// Analyze every `.rs` file under `roots`, returning per-file reports in
/// deterministic order. Paths are classified with [`classify`].
pub fn analyze_paths(roots: &[PathBuf]) -> Vec<(PathBuf, FileReport)> {
    let mut reports = Vec::new();
    for root in roots {
        for file in collect_rust_files(root) {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            let class = classify(&file);
            let label = file.to_string_lossy().into_owned();
            reports.push((file, analyze_source(&label, class, &src)));
        }
    }
    reports
}
