//! Hand-rolled Rust tokenizer.
//!
//! The build environment is offline, so no `syn`/`proc-macro2`. The rules
//! only need a faithful *lexical* view: identifiers and punctuation with
//! line numbers, with string/char literals, lifetimes, numbers and
//! comments correctly skipped (so `"thread_rng"` inside a string or a doc
//! comment never triggers a finding). Comments are captured separately —
//! they carry the `// sgx-lint: allow(...)` markers.

/// Kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (text in [`Tok::text`]).
    Ident,
    /// Single punctuation byte (`.`, `!`, `{`, …).
    Punct(u8),
    /// Numeric literal.
    Num,
    /// String / raw string / byte-string literal.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// What kind of token.
    pub kind: TokKind,
    /// Identifier text (empty for non-identifiers).
    pub text: String,
    /// Byte offset of the token's first byte in the source. The variant
    /// generator ([`crate::variants`]) uses this for source surgery; the
    /// rules themselves never look at it.
    pub pos: usize,
}

/// A comment (line or block), carrying allow-markers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/* */` delimiters.
    pub text: String,
}

/// Tokenizer output: code tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Tokenize `src`. Never fails: unrecognized bytes become punctuation and
/// unterminated literals run to end of input (the real compiler rejects
/// such files anyway; the lint must simply not panic on them).
pub fn tokenize(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: String::from_utf8_lossy(&b[start..j]).into_owned(),
                });
                i = j;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push(Comment {
                    line: start_line,
                    text: String::from_utf8_lossy(&b[start..end]).into_owned(),
                });
                i = j;
            }
            b'"' => {
                // Capture the start line first: skip_string advances `line`
                // past embedded newlines, and the token must anchor to where
                // the literal opens, not where it closes.
                let from = line;
                let j = skip_string(b, i, false, &mut line);
                out.tokens.push(Tok { line: from, kind: TokKind::Str, text: String::new(), pos: i });
                i = j;
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident-start
                // NOT followed by a closing quote (`'a'` is a char).
                let is_lifetime = b
                    .get(i + 1)
                    .is_some_and(|&n| n == b'_' || n.is_ascii_alphabetic())
                    && b.get(i + 2) != Some(&b'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    out.tokens.push(Tok { line, kind: TokKind::Lifetime, text: String::new(), pos: i });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < b.len() {
                        match b[j] {
                            b'\\' => j += 2,
                            b'\'' => {
                                j += 1;
                                break;
                            }
                            b'\n' => break, // malformed; don't swallow the file
                            _ => j += 1,
                        }
                    }
                    out.tokens.push(Tok { line, kind: TokKind::Char, text: String::new(), pos: i });
                    i = j;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                let text = std::str::from_utf8(&b[start..j]).unwrap_or("").to_string();
                // String prefixes: r"", r#""#, b"", br"", rb"". A raw prefix
                // only opens a string when the hash run actually ends in a
                // quote — `r#ident` is a raw identifier, not a string.
                let raw_prefix = matches!(text.as_str(), "r" | "br" | "rb");
                let is_str_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb") && {
                    let mut k = j;
                    if raw_prefix {
                        while b.get(k) == Some(&b'#') {
                            k += 1;
                        }
                    }
                    b.get(k) == Some(&b'"')
                };
                if is_str_prefix {
                    let from = line;
                    let k = skip_string(b, j, raw_prefix, &mut line);
                    out.tokens.push(Tok { line: from, kind: TokKind::Str, text: String::new(), pos: start });
                    i = k;
                } else {
                    out.tokens.push(Tok { line, kind: TokKind::Ident, text, pos: start });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                // Fractional part — but not `1..10` range syntax.
                if j < b.len()
                    && b[j] == b'.'
                    && b.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                {
                    j += 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                }
                // Exponent sign (`1e-5`).
                if j < b.len()
                    && (b[j] == b'+' || b[j] == b'-')
                    && b.get(j.wrapping_sub(1)).is_some_and(|p| *p == b'e' || *p == b'E')
                {
                    j += 1;
                    while j < b.len() && b[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                out.tokens.push(Tok { line, kind: TokKind::Num, text: String::new(), pos: i });
                i = j;
            }
            c => {
                out.tokens.push(Tok { line, kind: TokKind::Punct(c), text: String::new(), pos: i });
                i += 1;
            }
        }
    }
    out
}

/// Skip a string literal starting at `b[i]` (which is `"` or, for `raw`
/// strings, an optional `#` run followed by `"`). Returns the index just
/// past the closing delimiter and updates `line` for embedded newlines.
///
/// `raw` matters even with zero hashes: in `r"C:\dir"` the backslash is a
/// literal byte, not an escape — treating it as an escape made the old
/// lexer swallow the closing quote and mis-lex the rest of the file.
fn skip_string(b: &[u8], i: usize, raw: bool, line: &mut u32) -> usize {
    let mut j = i;
    // Count leading '#' of a raw string delimiter.
    let mut hashes = 0usize;
    if raw {
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
    }
    if b.get(j) != Some(&b'"') {
        // Caller mis-guessed (defensive; the prefix check rules this out).
        return j.max(i + 1);
    }
    j += 1;
    if raw {
        // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
        while j < b.len() {
            if b[j] == b'\n' {
                *line += 1;
            }
            if b[j] == b'"'
                && b[j + 1..].iter().take(hashes).take_while(|&&c| c == b'#').count() == hashes
            {
                return j + 1 + hashes;
            }
            j += 1;
        }
        j
    } else {
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\n' => {
                    *line += 1;
                    j += 1;
                }
                b'"' => return j + 1,
                _ => j += 1,
            }
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // thread_rng in a comment
            /* Instant in /* nested */ block */
            let s = "thread_rng";
            let r = r#"SystemTime "quoted" inside"#;
            let c = 'x';
            let esc = '\n';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|i| i == "thread_rng" || i == "Instant" || i == "SystemTime"));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lx = tokenize("let a = 1; // sgx-lint: allow(x) reason\nlet b = 2;");
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 1);
        assert!(lx.comments[0].text.contains("sgx-lint"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(lx.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 3);
        assert_eq!(lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 0);
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let lx = tokenize("for i in 0..10 { } let f = 1.5e-3;");
        let dots = lx
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Punct(b'.')))
            .count();
        assert_eq!(dots, 2, "0..10 keeps its two range dots");
        assert_eq!(lx.tokens.iter().filter(|t| t.kind == TokKind::Num).count(), 3);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line\nbreak\";\nafter();";
        let lx = tokenize(src);
        let after = lx.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn multiline_string_token_anchors_to_opening_line() {
        let src = "let s = \"line\nbreak\";\nafter();";
        let lx = tokenize(src);
        let s = lx.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.line, 1, "string token carries the line it opens on");
    }

    #[test]
    fn zero_hash_raw_strings_do_not_escape() {
        // In r"..\" the backslash is literal; the string ends at the quote.
        // The old lexer treated \" as an escape and swallowed the closer,
        // mis-lexing everything after it.
        let src = r#"let p = r"C:\dir\"; hidden_in_string(); "#;
        let src = format!("{src}\nvisible();");
        let lx = tokenize(&src);
        let ids: Vec<&str> = lx.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(ids.contains(&"hidden_in_string"), "code after r\"..\\\" must lex");
        assert!(ids.contains(&"visible"));
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let lx = tokenize("let r#type = r#match + other;");
        let ids = lx.tokens.iter().filter(|t| t.kind == TokKind::Ident).count();
        // let, r, type, r, match, other — no Str tokens at all.
        assert_eq!(lx.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 0);
        assert!(ids >= 5);
        assert!(lx.tokens.iter().any(|t| t.text == "other"));
    }

    #[test]
    fn multiline_raw_strings_track_lines() {
        let src = "let q = r#\"select *\nfrom t\nwhere x\"#;\nafter();";
        let lx = tokenize(src);
        let q = lx.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(q.line, 1);
        let after = lx.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn deeply_nested_block_comments_terminate() {
        let src = "/* a /* b /* c */ b */ a */ code();";
        let lx = tokenize(src);
        assert!(lx.tokens.iter().any(|t| t.text == "code"));
        assert_eq!(lx.comments.len(), 1);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["let s = \"never closed", "let s = r#\"never closed\"", "/* open", "r#"] {
            let _ = tokenize(src);
        }
    }
}
