//! CLI entry point: `cargo run -p sgx-lint -- [--json] [paths...]`.

use std::process::ExitCode;

fn main() -> ExitCode {
    sgx_lint::cli::run(std::env::args().skip(1))
}
