//! Seeded, semantics-preserving source transforms over lint corpus cases
//! — the mutation half of `sgx-lint robustness` ([`crate::robustness`]).
//!
//! Each transform takes a source string and returns a rewritten string
//! that a Rust compiler would accept with the *same meaning*, or `None`
//! when the transform does not apply (nothing to rename, nothing to
//! wrap, …). The point is rapx-bench-style robust-detection scoring: a
//! rule that fires on a base case but misses a renamed / reordered /
//! indirected variant of it is pattern-matching on incidental syntax,
//! not detecting the property.
//!
//! ## Catalog
//!
//! | transform | what it does |
//! |-----------|--------------|
//! | `rename`  | uniformly renames file-defined identifiers to fresh names (rule-significant names are protected — see [`protected`]) |
//! | `reorder` | permutes top-level items (each item travels with its attached leading comments/attributes) |
//! | `wrap`    | routes calls to file-defined functions through generated pass-through wrappers of configurable depth |
//! | `seqlen`  | splits `let x = RHS;` into a chain of `let x_sN…` temporaries of configurable length, on one source line |
//! | `nest`    | wraps the file body in `mod` shells of configurable depth |
//! | `noise`   | inserts decoy comments, blank lines and a raw-string decoy const whose *text* mentions every trigger word |
//! | `alias`   | declares `pub type S_x = S;` for file-defined structs and reroutes every reference (impl blocks, signatures, literals) through the alias |
//! | `dyncall` | reroutes calls to free functions through a generated trait object (`&dyn NameDyn`) so the call chain crosses a dynamic dispatch edge |
//! | `xsplit`  | **multi-file**: wraps (depth 1) then splits the top-level items into two files at a seeded cut, replicating module-set pragmas into both halves ([`apply_ws`]) |
//! | `compose` | rename → wrap → seqlen → reorder → nest → noise in one variant |
//!
//! ## Invariants every transform preserves
//!
//! * **Marker adjacency** — `// sgx-lint: allow(...)` covers its own line
//!   and the next; `paper:` / `uarch:` provenance tags cover their line
//!   and the one below. No transform ever separates a comment line from
//!   the line directly beneath it (noise never inserts after a
//!   comment-bearing line; seqlen keeps the rewritten statement on the
//!   original line; nest/reorder move whole line runs together).
//! * **Rule-significant names** — identifiers the rules key on
//!   (`as_slice_untracked`, `fault_tick`, `cycles`, counter-ish names,
//!   slice consumers, fallible-call names, …) are never renamed.
//! * **Determinism** — all randomness comes from the caller's seed via
//!   [`Rng`] (splitmix64); the same `(source, transform)` pair always
//!   yields the same bytes.

use crate::parse::{self, FnItem, Items};
use crate::tokenizer::{tokenize, Lexed, Tok, TokKind};
use std::collections::BTreeSet;

// ------------------------------------------------------------------ rng --

/// Minimal splitmix64 — deterministic, dependency-free, good enough for
/// picking permutations and suffixes.
pub struct Rng(u64);

impl Rng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (n must be > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// FNV-1a over a string — used to derive per-case seeds so variant
/// generation is independent of corpus iteration order and `--jobs`.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Mix a global seed with a per-case hash into one stream seed.
pub fn mix(seed: u64, salt: u64) -> u64 {
    Rng::new(seed ^ salt.rotate_left(17)).next()
}

// ------------------------------------------------------------ transforms --

/// One concrete transform application, fully parameterized (so a variant
/// label pinpoints exactly what was done to the base case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transform {
    /// Uniform fresh renaming of file-defined identifiers.
    Rename {
        /// Stream seed (picks the suffix per name).
        seed: u64,
    },
    /// Permutation of top-level items.
    Reorder {
        /// Stream seed (picks the permutation).
        seed: u64,
    },
    /// Pass-through wrapper indirection on file-internal calls.
    Wrap {
        /// Wrapper chain length (1 = one wrapper between caller and callee).
        depth: usize,
    },
    /// `let`-chain lengthening.
    Seqlen {
        /// Statements per original `let` (2 = one temporary).
        chain: usize,
    },
    /// `mod` shell nesting.
    Nest {
        /// Number of nested shells.
        depth: usize,
    },
    /// Decoy comments / blank lines / raw-string decoy const.
    Noise {
        /// Stream seed (picks insertion points and decoy text).
        seed: u64,
    },
    /// `pub type S_x = S;` indirection on file-defined struct references.
    Alias {
        /// Stream seed (picks the alias suffix per struct).
        seed: u64,
    },
    /// Trait-object dispatch indirection on free-function calls.
    Dyncall,
    /// Cross-file split: wrap (depth 1) then cut the top-level items into
    /// two files, replicating module-set pragmas into both halves. Only
    /// applicable through [`apply_ws`].
    Xsplit {
        /// Stream seed (picks the cut point).
        seed: u64,
    },
    /// All of the single-file transforms composed in one variant.
    Compose {
        /// Stream seed shared by the stochastic stages.
        seed: u64,
    },
}

/// The transform kind names, in canonical (reporting) order.
pub const KINDS: [&str; 10] = [
    "rename", "reorder", "wrap", "seqlen", "nest", "noise", "alias", "dyncall", "xsplit",
    "compose",
];

impl Transform {
    /// Canonical kind name (the RD grouping key).
    pub fn kind(&self) -> &'static str {
        match self {
            Transform::Rename { .. } => "rename",
            Transform::Reorder { .. } => "reorder",
            Transform::Wrap { .. } => "wrap",
            Transform::Seqlen { .. } => "seqlen",
            Transform::Nest { .. } => "nest",
            Transform::Noise { .. } => "noise",
            Transform::Alias { .. } => "alias",
            Transform::Dyncall => "dyncall",
            Transform::Xsplit { .. } => "xsplit",
            Transform::Compose { .. } => "compose",
        }
    }

    /// Human label with parameters, e.g. `wrap[d2]`, `rename[s1]`.
    pub fn label(&self) -> String {
        match self {
            Transform::Rename { seed } => format!("rename[s{seed}]"),
            Transform::Reorder { seed } => format!("reorder[s{seed}]"),
            Transform::Wrap { depth } => format!("wrap[d{depth}]"),
            Transform::Seqlen { chain } => format!("seqlen[n{chain}]"),
            Transform::Nest { depth } => format!("nest[d{depth}]"),
            Transform::Noise { seed } => format!("noise[s{seed}]"),
            Transform::Alias { seed } => format!("alias[s{seed}]"),
            Transform::Dyncall => "dyncall".to_string(),
            Transform::Xsplit { seed } => format!("xsplit[s{seed}]"),
            Transform::Compose { seed } => format!("compose[s{seed}]"),
        }
    }
}

/// Apply one single-file transform. `None` means "does not apply to this
/// source" (no renameable names, fewer than three top-level items, …) —
/// the scorer skips such variants rather than double-counting the base.
/// [`Transform::Xsplit`] is inherently multi-file and always returns
/// `None` here; use [`apply_ws`].
pub fn apply(src: &str, t: &Transform) -> Option<String> {
    let out = match t {
        Transform::Rename { seed } => rename(src, &mut Rng::new(*seed)),
        Transform::Reorder { seed } => reorder(src, &mut Rng::new(*seed)),
        Transform::Wrap { depth } => wrap(src, *depth),
        Transform::Seqlen { chain } => seqlen(src, *chain),
        Transform::Nest { depth } => nest(src, *depth),
        Transform::Noise { seed } => noise(src, &mut Rng::new(*seed)),
        Transform::Alias { seed } => alias(src, &mut Rng::new(*seed)),
        Transform::Dyncall => dyncall(src),
        Transform::Xsplit { .. } => None,
        Transform::Compose { seed } => compose(src, *seed),
    };
    out.filter(|o| o != src)
}

/// Apply one transform as a *variant workspace*: a deterministic list of
/// `(file name, content)` pairs. Single-file transforms come back as a
/// one-element workspace named `case.rs`; [`Transform::Xsplit`] produces
/// two files. The verdict over a workspace is the union of findings
/// across its files ([`crate::analyze_set_cfg`]).
pub fn apply_ws(src: &str, t: &Transform) -> Option<Vec<(String, String)>> {
    match t {
        Transform::Xsplit { seed } => xsplit(src, &mut Rng::new(*seed)),
        _ => apply(src, t).map(|out| vec![("case.rs".to_string(), out)]),
    }
}

fn compose(src: &str, seed: u64) -> Option<String> {
    let mut cur = src.to_string();
    let stages: [Transform; 6] = [
        Transform::Rename { seed: mix(seed, 1) },
        Transform::Wrap { depth: 1 },
        Transform::Seqlen { chain: 2 },
        Transform::Reorder { seed: mix(seed, 2) },
        Transform::Nest { depth: 1 },
        Transform::Noise { seed: mix(seed, 3) },
    ];
    for stage in &stages {
        if let Some(next) = apply(&cur, stage) {
            cur = next;
        }
    }
    (cur != src).then_some(cur)
}

// -------------------------------------------------------------- splicing --

/// One byte-range replacement.
struct Patch {
    at: usize,
    del: usize,
    text: String,
}

/// Apply non-overlapping patches to `src`. Patches are sorted by offset;
/// overlapping patches would be a generator bug, so debug-assert.
fn splice(src: &str, mut patches: Vec<Patch>) -> String {
    patches.sort_by_key(|p| p.at);
    debug_assert!(
        patches.windows(2).all(|w| w[0].at + w[0].del <= w[1].at),
        "overlapping variant patches"
    );
    let mut out = String::with_capacity(src.len() + 64);
    let mut cursor = 0usize;
    for p in &patches {
        out.push_str(&src[cursor..p.at]);
        out.push_str(&p.text);
        cursor = p.at + p.del;
    }
    out.push_str(&src[cursor..]);
    out
}

/// All identifier texts in the token stream (collision check for fresh
/// names).
fn ident_set(lexed: &Lexed) -> BTreeSet<String> {
    lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

/// Reserve a name not yet in `used`, extending with `x` on collision.
fn fresh(base: String, used: &mut BTreeSet<String>) -> String {
    let mut cand = base;
    while !used.insert(cand.clone()) {
        cand.push('x');
    }
    cand
}

// ---------------------------------------------------------------- rename --

/// Rust keywords and contextual keywords the renamer must never touch.
const KEYWORDS: [&str; 40] = [
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "_",
];

/// Names at least one rule keys on — renaming these would change what the
/// lint *should* report, so the variant would no longer be
/// semantics-preserving from the rules' point of view.
const RULE_ANCHORS: [&str; 29] = [
    "as_slice_untracked",
    "as_mut_slice_untracked",
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "Instant",
    "SystemTime",
    "HashMap",
    "HashSet",
    "RandomState",
    "unwrap",
    "expect",
    "panic",
    "todo",
    "unimplemented",
    "ok",
    "fault_tick",
    "Counters",
    "CategoryCycles",
    "main",
    "f64",
    "commit",
    "wall",
    "reconcile",
    "random",
    "gen_range",
    "gen_bool",
    "getrandom",
    "OsRng",
];

/// Is `name` off-limits for renaming? Keywords, rule anchors, narrowing
/// target types, slice consumers, fallible-call names, `try_*`, anything
/// counter-ish ([`crate::engine::counter_ish`] — `cycles`, `*_bytes`,
/// `elapsed`, …), and `*Kind` event enums (the des-invariant totality
/// check scopes by that suffix).
pub fn protected(name: &str) -> bool {
    KEYWORDS.contains(&name)
        || RULE_ANCHORS.contains(&name)
        || crate::engine::NARROW_INTS.contains(&name)
        || crate::semantic::SLICE_CONSUMERS.contains(&name)
        || crate::engine::FALLIBLE_CALLS.contains(&name)
        || crate::engine::counter_ish(name)
        || name.starts_with("try_")
        || name.ends_with("Kind")
}

/// Suffix pool for renamed identifiers.
const SUFFIXES: [&str; 8] = ["alpha", "beta", "gamma", "delta", "kappa", "sigma", "omega", "zeta"];

/// Names *defined* by this file: `fn`/`struct`/`enum`/`trait`/`mod`/
/// `type`/`const`/`static` items, `let` binders, fn parameters, struct
/// fields. Renaming is uniform per name across the whole file, and every
/// replacement target is globally fresh, so shadowing cannot capture:
/// two scopes that shared a name before the rename still share (the new)
/// one after, and no distinct name collapses onto another.
fn defined_names(lexed: &Lexed, items: &Items) -> Vec<String> {
    let toks = &lexed.tokens;
    let mut names: BTreeSet<String> = BTreeSet::new();
    const DEFINERS: [&str; 9] =
        ["fn", "struct", "enum", "trait", "mod", "type", "const", "static", "let"];
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !DEFINERS.contains(&t.text.as_str()) {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|n| n.kind == TokKind::Ident && n.text == "mut") {
            j += 1;
        }
        if let Some(n) = toks.get(j) {
            if n.kind == TokKind::Ident {
                names.insert(n.text.clone());
            }
        }
    }
    for f in &items.fns {
        for p in &f.params {
            names.insert(p.clone());
        }
    }
    for s in &items.structs {
        for fld in &s.fields {
            names.insert(fld.name.clone());
        }
    }
    let mut out: Vec<String> = names.into_iter().filter(|n| !protected(n)).collect();
    out.sort();
    out
}

fn rename(src: &str, rng: &mut Rng) -> Option<String> {
    let lexed = tokenize(src);
    let items = parse::parse(&lexed);
    let names = defined_names(&lexed, &items);
    if names.is_empty() {
        return None;
    }
    let mut used = ident_set(&lexed);
    let mut patches = Vec::new();
    for name in &names {
        let suffix = SUFFIXES[rng.below(SUFFIXES.len())];
        let new = fresh(format!("{name}_{suffix}"), &mut used);
        for t in lexed.tokens.iter().filter(|t| t.kind == TokKind::Ident && &t.text == name) {
            patches.push(Patch { at: t.pos, del: name.len(), text: new.clone() });
        }
    }
    if patches.is_empty() {
        return None;
    }
    Some(splice(src, patches))
}

// --------------------------------------------------------------- reorder --

/// Byte offset of the start of the line *after* the one containing `at`.
fn next_line_start(src: &str, at: usize) -> usize {
    src[at..].find('\n').map_or(src.len(), |off| at + off + 1)
}

fn reorder(src: &str, rng: &mut Rng) -> Option<String> {
    let lexed = tokenize(src);
    let toks = &lexed.tokens;
    // Top-level item end tokens: `;` at brace depth 0, or a `}` that
    // closes back to depth 0. Attributes (`#[...]`) contain neither.
    let mut depth = 0i32;
    let mut ends: Vec<usize> = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    ends.push(t.pos);
                }
            }
            TokKind::Punct(b';') if depth == 0 => ends.push(t.pos),
            _ => {}
        }
    }
    // Chunk boundaries at the start of the line following each item end;
    // the bytes between two boundaries are one movable chunk, so leading
    // comments and attributes travel with the item below them.
    let mut bounds: Vec<usize> = ends.iter().map(|&e| next_line_start(src, e)).collect();
    bounds.dedup();
    if let Some(last) = bounds.last_mut() {
        *last = src.len(); // trailing bytes ride with the final chunk
    }
    let mut chunks: Vec<&str> = Vec::new();
    let mut cursor = 0usize;
    for &b in &bounds {
        if b > cursor {
            chunks.push(&src[cursor..b]);
            cursor = b;
        }
    }
    // The first chunk (file docs + first item) stays pinned: `//!` inner
    // docs must remain at the top of the file.
    if chunks.len() < 3 {
        return None;
    }
    let movable = chunks.len() - 1;
    let mut order: Vec<usize> = (1..chunks.len()).collect();
    for i in (1..movable).rev() {
        order.swap(i, rng.below(i + 1));
    }
    if order.iter().enumerate().all(|(i, &o)| o == i + 1) {
        order.rotate_left(1);
    }
    let mut out = String::with_capacity(src.len());
    out.push_str(chunks[0]);
    for &o in &order {
        out.push_str(chunks[o]);
    }
    Some(out)
}

// ------------------------------------------------------------------ wrap --

/// Is `kw_tok` inside the body of some *other* fn (a nested fn a
/// top-level wrapper could not call)?
fn nested_in_fn(items: &Items, kw_tok: usize) -> bool {
    items.fns.iter().any(|f| f.body.0 <= kw_tok && kw_tok < f.body.1 && f.kw_tok != kw_tok)
}

/// Index of the impl block whose body contains `kw_tok`, if any.
fn containing_impl(items: &Items, kw_tok: usize) -> Option<usize> {
    items.impls.iter().position(|im| im.body.0 <= kw_tok && kw_tok < im.body.1)
}

/// Is the impl whose body starts at token `body_start` a trait impl
/// (`impl Trait for Type`)? Generated wrappers must not be inserted into
/// trait impls — a non-trait method there is not valid Rust.
fn is_trait_impl(toks: &[Tok], body_start: usize) -> bool {
    // Walk back from the `{` to the `impl` keyword (bounded).
    let open = body_start.saturating_sub(1);
    let lo = open.saturating_sub(64);
    let mut impl_at = None;
    for k in (lo..=open).rev() {
        if toks[k].kind == TokKind::Ident && toks[k].text == "impl" {
            impl_at = Some(k);
            break;
        }
    }
    let Some(ia) = impl_at else { return true }; // can't prove inherent — be safe
    toks[ia..open].iter().any(|t| t.kind == TokKind::Ident && t.text == "for")
}

/// The signature text of `item` minus `fn name`, e.g.
/// `"(xs: &[u64]) -> u64 "` — everything from just past the name token to
/// the body-opening `{`.
fn sig_rest<'a>(src: &'a str, toks: &[Tok], item: &FnItem) -> Option<&'a str> {
    if item.body.1 <= item.body.0 || item.body.0 == 0 {
        return None;
    }
    let name_tok = toks.get(item.kw_tok + 1)?;
    let open_tok = toks.get(item.body.0 - 1)?;
    if open_tok.kind != TokKind::Punct(b'{') {
        return None;
    }
    let from = name_tok.pos + item.name.len();
    (from <= open_tok.pos).then(|| &src[from..open_tok.pos])
}

fn wrap(src: &str, depth: usize) -> Option<String> {
    if depth == 0 {
        return None;
    }
    let lexed = tokenize(src);
    let toks = &lexed.tokens;
    let items = parse::parse(&lexed);
    // Callees eligible for wrapping: uniquely named in this file, with a
    // body, not nested inside another fn, and (for methods) living in an
    // inherent impl.
    #[derive(Clone)]
    struct Target {
        fn_idx: usize,
        method: bool,
        impl_idx: Option<usize>,
    }
    let mut targets: Vec<(String, Target)> = Vec::new();
    for (ni, f) in items.fns.iter().enumerate() {
        if items.fns.iter().filter(|o| o.name == f.name).count() != 1 {
            continue;
        }
        if f.body.1 <= f.body.0 || nested_in_fn(&items, f.kw_tok) {
            continue;
        }
        if sig_rest(src, toks, f).is_none() {
            continue;
        }
        let method = f.params.first().is_some_and(|p| p == "self");
        let impl_idx = containing_impl(&items, f.kw_tok);
        if method {
            match impl_idx {
                Some(ii)
                    if items.impls[ii].body.1 < toks.len()
                        && !is_trait_impl(toks, items.impls[ii].body.0) => {}
                _ => continue,
            }
        } else if impl_idx.is_some() {
            // Associated fns (`Self::new`-style call sites) are left alone.
            continue;
        }
        targets.push((f.name.clone(), Target { fn_idx: ni, method, impl_idx }));
    }
    if targets.is_empty() {
        return None;
    }
    // Call sites worth redirecting: resolve to a target, arity matches,
    // and the caller is not the callee itself (recursion stays put).
    let mut used = ident_set(&lexed);
    let mut patches: Vec<Patch> = Vec::new();
    let mut wrapped: Vec<(String, Target, Vec<String>)> = Vec::new(); // (name, target, chain)
    for (name, target) in &targets {
        let callee = &items.fns[target.fn_idx];
        let arity = callee.params.len() - usize::from(target.method);
        let mut sites: Vec<usize> = Vec::new();
        for caller in &items.fns {
            if caller.name == *name {
                continue;
            }
            for call in &caller.calls {
                if call.callee == *name
                    && call.method == target.method
                    && call.args.len() == arity
                {
                    sites.push(call.tok);
                }
            }
        }
        if sites.is_empty() {
            continue;
        }
        let chain: Vec<String> = (1..=depth)
            .map(|d| fresh(format!("{name}_w{d}"), &mut used))
            .collect();
        let Some(last) = chain.last().cloned() else { continue };
        for tok_idx in sites {
            let t = &toks[tok_idx];
            patches.push(Patch { at: t.pos, del: name.len(), text: last.clone() });
        }
        wrapped.push((name.clone(), target.clone(), chain));
    }
    if wrapped.is_empty() {
        return None;
    }
    // Synthesize the wrapper chains.
    let mut eof_extra = String::new();
    for (name, target, chain) in &wrapped {
        let callee = &items.fns[target.fn_idx];
        let Some(sig) = sig_rest(src, toks, callee) else { continue };
        let args: Vec<&str> =
            callee.params.iter().filter(|p| p.as_str() != "self").map(|s| s.as_str()).collect();
        let args = args.join(", ");
        let mut body_target = name.clone();
        for wname in chain {
            let text = if target.method {
                format!("\n    fn {wname}{} {{ self.{body_target}({args}) }}\n", sig.trim_end())
            } else {
                format!("\nfn {wname}{} {{ {body_target}({args}) }}\n", sig.trim_end())
            };
            match target.impl_idx {
                Some(ii) => {
                    let close = &toks[items.impls[ii].body.1];
                    patches.push(Patch { at: close.pos, del: 0, text });
                }
                None => eof_extra.push_str(&text),
            }
            body_target = wname.clone();
        }
    }
    let mut out = splice(src, patches);
    if !eof_extra.is_empty() {
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(eof_extra.trim_start_matches('\n'));
    }
    Some(out)
}

// ---------------------------------------------------------------- seqlen --

fn seqlen(src: &str, chain: usize) -> Option<String> {
    if chain < 2 {
        return None;
    }
    let lexed = tokenize(src);
    let toks = &lexed.tokens;
    let mut used = ident_set(&lexed);
    let mut patches: Vec<Patch> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if !(t.kind == TokKind::Ident && t.text == "let") {
            i += 1;
            continue;
        }
        // `if let` / `while let` are refutable matches, not statements.
        if i > 0
            && toks[i - 1].kind == TokKind::Ident
            && matches!(toks[i - 1].text.as_str(), "if" | "while")
        {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let had_mut = toks.get(j).is_some_and(|n| n.kind == TokKind::Ident && n.text == "mut");
        if had_mut {
            j += 1;
        }
        let Some(binder) = toks.get(j) else { break };
        if binder.kind != TokKind::Ident || binder.text == "_" {
            i += 1;
            continue;
        }
        // Optional `: Type` annotation, then `=` at bracket depth 0.
        let mut k = j + 1;
        let ann_from = toks.get(k).filter(|n| n.kind == TokKind::Punct(b':')).map(|n| n.pos);
        let (mut par, mut brk, mut brc, mut ang) = (0i32, 0i32, 0i32, 0i32);
        let mut eq_at: Option<usize> = None;
        while k < (i + 96).min(toks.len()) {
            match toks[k].kind {
                TokKind::Punct(b'(') => par += 1,
                TokKind::Punct(b')') => par -= 1,
                TokKind::Punct(b'[') => brk += 1,
                TokKind::Punct(b']') => brk -= 1,
                TokKind::Punct(b'{') => brc += 1,
                TokKind::Punct(b'}') => brc -= 1,
                TokKind::Punct(b'<') => ang += 1,
                TokKind::Punct(b'>') => ang -= 1,
                TokKind::Punct(b'=')
                    if par == 0 && brk == 0 && brc == 0 && ang <= 0 =>
                {
                    if toks.get(k + 1).is_some_and(|n| n.kind == TokKind::Punct(b'=')) {
                        break; // `==` — not a let statement shape we handle
                    }
                    eq_at = Some(k);
                    break;
                }
                TokKind::Punct(b';') if par == 0 && brk == 0 && brc == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq_at else {
            i += 1;
            continue;
        };
        if ann_from.is_none() && eq != j + 1 {
            // Pattern binder (`let (a, b) = …`, `let Some(x) = …`) — skip.
            i += 1;
            continue;
        }
        // Find the terminating `;` at depth 0; `let … else { … }` (a `{`
        // at depth 0 before `;` preceded by `else`) disqualifies.
        let (mut par, mut brk, mut brc) = (0i32, 0i32, 0i32);
        let mut semi_at: Option<usize> = None;
        let mut m = eq + 1;
        while m < (eq + 256).min(toks.len()) {
            match toks[m].kind {
                TokKind::Punct(b'(') => par += 1,
                TokKind::Punct(b')') => par -= 1,
                TokKind::Punct(b'[') => brk += 1,
                TokKind::Punct(b']') => brk -= 1,
                TokKind::Punct(b'{') => brc += 1,
                TokKind::Punct(b'}') => {
                    brc -= 1;
                    if brc < 0 {
                        break; // ran out of the enclosing block — malformed
                    }
                }
                TokKind::Punct(b';') if par == 0 && brk == 0 && brc == 0 => {
                    semi_at = Some(m);
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        let Some(semi) = semi_at else {
            i = j + 1;
            continue;
        };
        let rhs = src[next_byte_after_eq(toks, eq)..toks[semi].pos].trim();
        if rhs.is_empty() {
            i = j + 1;
            continue;
        }
        let ann = ann_from.map(|from| src[from..toks[eq].pos].trim_end()).unwrap_or("");
        let name = &binder.text;
        let temps: Vec<String> =
            (1..chain).map(|n| fresh(format!("{name}_s{n}"), &mut used)).collect();
        let (Some(tfirst), Some(tlast)) = (temps.first(), temps.last()) else {
            i = semi + 1;
            continue;
        };
        let mut text = format!("let {tfirst}{ann} = {rhs};");
        for w in temps.windows(2) {
            text.push_str(&format!(" let {} = {};", w[1], w[0]));
        }
        text.push_str(&format!(" let {}{name} = {tlast};", if had_mut { "mut " } else { "" }));
        let at = t.pos;
        let del = toks[semi].pos + 1 - at;
        patches.push(Patch { at, del, text });
        i = semi + 1;
    }
    if patches.is_empty() {
        return None;
    }
    Some(splice(src, patches))
}

/// Byte just past the `=` token at `eq`.
fn next_byte_after_eq(toks: &[Tok], eq: usize) -> usize {
    toks[eq].pos + 1
}

// ------------------------------------------------------------------ nest --

/// Is this raw line a pure line comment (possibly indented), excluding
/// `//!` inner docs which must stay at the top of the file?
fn attached_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    (t.starts_with("//") && !t.starts_with("//!")) || t.starts_with("#[")
}

fn nest(src: &str, depth: usize) -> Option<String> {
    if depth == 0 {
        return None;
    }
    let lexed = tokenize(src);
    let first = lexed.tokens.first()?;
    // Start of the line holding the first code token…
    let mut at = src[..first.pos].rfind('\n').map_or(0, |n| n + 1);
    // …walked up over the attached comment/attribute block so a marker
    // directly above the first item keeps covering it.
    loop {
        if at == 0 {
            break;
        }
        let prev_start = src[..at - 1].rfind('\n').map_or(0, |n| n + 1);
        let prev_line = &src[prev_start..at - 1];
        if attached_comment_line(prev_line) {
            at = prev_start;
        } else {
            break;
        }
    }
    let mut shells = String::new();
    for d in 0..depth {
        shells.push_str(&format!("mod shell_{d} {{\n"));
    }
    let mut out = String::with_capacity(src.len() + shells.len() + depth * 2);
    out.push_str(&src[..at]);
    out.push_str(&shells);
    out.push_str(&src[at..]);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    for _ in 0..depth {
        out.push_str("}\n");
    }
    Some(out)
}

// ----------------------------------------------------------------- noise --

/// Decoy comment pool. None of these may contain `sgx-lint:`, `paper:`,
/// `uarch:` (marker/tag collisions) or digits (a decoy inserted into a
/// calibration file must not add numeric-literal lines — it cannot, being
/// a comment, but keep the text clean anyway).
const DECOY_COMMENTS: [&str; 4] = [
    "// decoy: thread_rng unwrap unsafe as_slice_untracked — comment noise, not code",
    "/* decoy block: Instant SystemTime HashMap panic */",
    "// decoy: cycles counter bytes elapsed fault_tick — words the rules key on",
    "",
];

fn noise(src: &str, rng: &mut Rng) -> Option<String> {
    let lexed = tokenize(src);
    let toks = &lexed.tokens;
    // Brace depth at the start of each 1-based line.
    let line_count = src.lines().count().max(1);
    let mut depth_at = vec![0i32; line_count + 2];
    {
        let mut depth = 0i32;
        let mut cur_line = 1usize;
        for t in toks {
            while cur_line < t.line as usize {
                cur_line += 1;
                if cur_line < depth_at.len() {
                    depth_at[cur_line] = depth;
                }
            }
            match t.kind {
                TokKind::Punct(b'{') => depth += 1,
                TokKind::Punct(b'}') => depth -= 1,
                _ => {}
            }
        }
        for l in (cur_line + 1)..depth_at.len() {
            depth_at[l] = depth;
        }
    }
    // Lines interior to a multi-line token (raw strings): conservatively,
    // every line from a token's start to the next token's start when they
    // differ by more than the newlines a single-line token could span.
    let mut blocked = vec![false; line_count + 2];
    for w in toks.windows(2) {
        if w[1].line > w[0].line {
            for l in (w[0].line as usize)..(w[1].line as usize) {
                if l + 1 < blocked.len() {
                    blocked[l + 1] = true; // cannot insert *before* line l+1
                }
            }
        }
    }
    // Multi-line block comments get the same conservative treatment.
    for c in &lexed.comments {
        let span = c.text.matches('\n').count();
        for l in 0..=span {
            let idx = c.line as usize + l + 1;
            if idx < blocked.len() {
                blocked[idx] = true;
            }
        }
    }
    let lines: Vec<&str> = src.split_inclusive('\n').collect();
    // Eligible insertion points: before line l+1 (0-based index l+1 into
    // `lines`), where line l carries no comment (marker adjacency) and is
    // not an attribute (attribute attachment).
    let mut eligible: Vec<usize> = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let lno = idx + 1;
        if line.contains("//") || line.contains("/*") || line.contains("*/") {
            continue;
        }
        if line.trim_start().starts_with("#[") {
            continue;
        }
        if blocked.get(lno + 1).copied().unwrap_or(false) {
            continue;
        }
        eligible.push(idx + 1); // insert before `lines[idx + 1]`
    }
    if eligible.is_empty() {
        return None;
    }
    let picks = 3 + rng.below(3);
    let mut chosen: BTreeSet<usize> = BTreeSet::new();
    for _ in 0..picks {
        chosen.insert(eligible[rng.below(eligible.len())]);
    }
    // One decoy const at a depth-0 point, if any exists.
    let mut used = ident_set(&lexed);
    let decoy_const = eligible
        .iter()
        .copied()
        .find(|&idx| depth_at.get(idx + 1).copied().unwrap_or(1) == 0)
        .map(|idx| {
            let a = (b'a' + (rng.below(26) as u8)) as char;
            let b = (b'a' + (rng.below(26) as u8)) as char;
            let name = fresh(format!("NOISE_{a}{b}"), &mut used);
            (idx, format!("const {name}: &str = r\"decoy as_slice_untracked thread_rng unsafe panic unwrap cycles\";\n"))
        });
    let mut out = String::with_capacity(src.len() + 256);
    for (idx, line) in lines.iter().enumerate() {
        if chosen.contains(&idx) {
            let c = DECOY_COMMENTS[rng.below(DECOY_COMMENTS.len())];
            out.push_str(c);
            out.push('\n');
        }
        if let Some((cidx, ref text)) = decoy_const {
            if cidx == idx {
                out.push_str(text);
            }
        }
        out.push_str(line);
    }
    // Insertion points at EOF.
    if chosen.contains(&lines.len()) {
        let c = DECOY_COMMENTS[rng.below(DECOY_COMMENTS.len())];
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(c);
        out.push('\n');
    }
    Some(out)
}

// ----------------------------------------------------------------- alias --

/// For every braced struct this file defines (non-generic, uniquely
/// named), declare `pub type {name}_{suffix} = {name};` directly after
/// the struct and reroute every *reference* (impl headers, signatures,
/// struct literals, patterns) through the alias. The definition keeps its
/// name, so what the rules should report is unchanged — a rule that loses
/// the struct behind the alias is pattern-matching on the name at the
/// use site instead of resolving it (the ROADMAP item 5 blind spot).
fn alias(src: &str, rng: &mut Rng) -> Option<String> {
    let lexed = tokenize(src);
    let toks = &lexed.tokens;
    let items = parse::parse(&lexed);
    let mut used = ident_set(&lexed);
    // Definition-site name tokens (`struct S`) stay untouched.
    let def_sites: BTreeSet<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind == TokKind::Ident && t.text == "struct")
        .map(|(i, _)| i + 1)
        .collect();
    let mut patches: Vec<Patch> = Vec::new();
    for st in &items.structs {
        if st.body.1 <= st.body.0
            || !toks.get(st.body.1).is_some_and(|t| t.kind == TokKind::Punct(b'}'))
            || items.structs.iter().filter(|o| o.name == st.name).count() != 1
        {
            continue;
        }
        // Generic structs would need parameterized aliases — skip.
        let generic = def_sites.iter().any(|&d| {
            toks.get(d).is_some_and(|t| t.text == st.name)
                && toks.get(d + 1).is_some_and(|t| t.kind == TokKind::Punct(b'<'))
        });
        if generic {
            continue;
        }
        let refs: Vec<&Tok> = toks
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.kind == TokKind::Ident && t.text == st.name && !def_sites.contains(i)
            })
            .map(|(_, t)| t)
            .collect();
        if refs.is_empty() {
            continue;
        }
        let suffix = SUFFIXES[rng.below(SUFFIXES.len())];
        let alias_name = fresh(format!("{}_{suffix}", st.name), &mut used);
        for t in refs {
            patches.push(Patch { at: t.pos, del: st.name.len(), text: alias_name.clone() });
        }
        // `pub` so a pub signature rerouted through the alias stays valid.
        let close = &toks[st.body.1];
        patches.push(Patch {
            at: close.pos + 1,
            del: 0,
            text: format!("\npub type {alias_name} = {};", st.name),
        });
    }
    if patches.is_empty() {
        return None;
    }
    Some(splice(src, patches))
}

// --------------------------------------------------------------- dyncall --

/// Reroute calls to eligible free functions through a generated trait
/// object: `helper(x)` becomes `helper_dyncall(x)`, which dispatches
/// `(&HelperObj as &dyn HelperDyn).dispatch_helper(x)`, whose impl calls
/// the original `helper`. The call chain still reaches the original by
/// name — through one dynamic-dispatch edge the rules must walk.
fn dyncall(src: &str) -> Option<String> {
    let lexed = tokenize(src);
    let toks = &lexed.tokens;
    let items = parse::parse(&lexed);
    let mut used = ident_set(&lexed);
    let mut patches: Vec<Patch> = Vec::new();
    let mut eof_extra = String::new();
    for f in &items.fns {
        if items.fns.iter().filter(|o| o.name == f.name).count() != 1
            || f.name == "main"
            || f.body.1 <= f.body.0
            || nested_in_fn(&items, f.kw_tok)
            || containing_impl(&items, f.kw_tok).is_some()
            || f.params.first().is_some_and(|p| p == "self")
        {
            continue;
        }
        // Generic fns and `impl Trait` / `where` signatures are not
        // object-safe to dispatch; returned borrows would re-elide
        // against `&self`.
        if toks.get(f.kw_tok + 2).is_some_and(|t| t.kind == TokKind::Punct(b'<')) {
            continue;
        }
        let Some(sig) = sig_rest(src, toks, f) else { continue };
        if sig.contains("impl ") || sig.contains("where") || sig.contains("-> &") {
            continue;
        }
        let arity = f.params.len();
        let mut sites: Vec<usize> = Vec::new();
        for caller in &items.fns {
            if caller.name == f.name {
                continue;
            }
            for call in &caller.calls {
                if call.callee == f.name && !call.method && call.args.len() == arity {
                    sites.push(call.tok);
                }
            }
        }
        if sites.is_empty() {
            continue;
        }
        // CamelCase the fn name for the trait/struct pair.
        let camel: String = f
            .name
            .split('_')
            .filter(|s| !s.is_empty())
            .map(|s| {
                let mut c = s.chars();
                match c.next() {
                    Some(h) => h.to_ascii_uppercase().to_string() + c.as_str(),
                    None => String::new(),
                }
            })
            .collect();
        let trait_name = fresh(format!("{camel}Dyn"), &mut used);
        let obj_name = fresh(format!("{camel}Obj"), &mut used);
        let method = fresh(format!("dispatch_{}", f.name), &mut used);
        let entry = fresh(format!("{}_dyncall", f.name), &mut used);
        for tok_idx in sites {
            let t = &toks[tok_idx];
            patches.push(Patch { at: t.pos, del: f.name.len(), text: entry.clone() });
        }
        let sig = sig.trim_end();
        // `(args…)` → `(&self, args…)` for the trait method.
        let open = sig.find('(').unwrap_or(0);
        let after = sig[open + 1..].trim_start();
        let self_sig = if after.starts_with(')') {
            format!("{}(&self{}", &sig[..open], &sig[open + 1..])
        } else {
            format!("{}(&self, {}", &sig[..open], &sig[open + 1..])
        };
        let args = f.params.join(", ");
        eof_extra.push_str(&format!(
            "\ntrait {trait_name} {{ fn {method}{self_sig}; }}\nstruct {obj_name};\nimpl {trait_name} for {obj_name} {{ fn {method}{self_sig} {{ {}({args}) }} }}\nfn {entry}{sig} {{ let obj: &dyn {trait_name} = &{obj_name}; obj.{method}({args}) }}\n",
            f.name
        ));
    }
    if patches.is_empty() {
        return None;
    }
    let mut out = splice(src, patches);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(eof_extra.trim_start_matches('\n'));
    Some(out)
}

// ---------------------------------------------------------------- xsplit --

/// The module-set pragmas that travel with *both* halves of a split: set
/// membership was a property of the whole file, so each half keeps it.
const SET_PRAGMAS: [&str; 3] =
    ["// sgx-lint: fault-tick-module", "// sgx-lint: charge-module", "// sgx-lint: des-module"];

/// Split a case into a two-file variant workspace: wrap (depth 1) first
/// so a call chain exists to sever, then cut the top-level item chunks at
/// a seeded point. Module-set pragmas are replicated into both halves,
/// and a file that was in the fault-tick set by *defining* `fault_tick`
/// pins both halves into the set with the explicit pragma. Calibration
/// files stay whole (their pragma scopes line-level provenance, which a
/// split would re-scope).
fn xsplit(src: &str, rng: &mut Rng) -> Option<Vec<(String, String)>> {
    if src.lines().any(|l| l.trim() == "// sgx-lint: calibration-file") {
        return None;
    }
    let base = wrap(src, 1).unwrap_or_else(|| src.to_string());
    let lexed = tokenize(&base);
    let toks = &lexed.tokens;
    let items = parse::parse(&lexed);
    // Top-level chunking, exactly as `reorder` does it.
    let mut depth = 0i32;
    let mut ends: Vec<usize> = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    ends.push(t.pos);
                }
            }
            TokKind::Punct(b';') if depth == 0 => ends.push(t.pos),
            _ => {}
        }
    }
    let mut bounds: Vec<usize> = ends.iter().map(|&e| next_line_start(&base, e)).collect();
    bounds.dedup();
    if let Some(last) = bounds.last_mut() {
        *last = base.len();
    }
    let mut chunks: Vec<&str> = Vec::new();
    let mut cursor = 0usize;
    for &b in &bounds {
        if b > cursor {
            chunks.push(&base[cursor..b]);
            cursor = b;
        }
    }
    if chunks.len() < 3 {
        return None;
    }
    let cut = 1 + rng.below(chunks.len() - 1);
    let half_a: String = chunks[..cut].concat();
    let half_b: String = chunks[cut..].concat();
    let mut pragmas: Vec<String> = base
        .lines()
        .filter(|l| SET_PRAGMAS.contains(&l.trim()))
        .map(|l| l.trim().to_string())
        .collect();
    if items.fns.iter().any(|f| f.name == "fault_tick")
        && !pragmas.iter().any(|p| p == SET_PRAGMAS[0])
    {
        pragmas.push(SET_PRAGMAS[0].to_string());
    }
    pragmas.dedup();
    let with_pragmas = |body: &str| -> String {
        let missing: Vec<&str> = pragmas
            .iter()
            .map(String::as_str)
            .filter(|p| !body.lines().any(|l| l.trim() == *p))
            .collect();
        if missing.is_empty() {
            body.to_string()
        } else {
            format!("{}\n{}", missing.join("\n"), body)
        }
    };
    Some(vec![
        ("part_a.rs".to_string(), with_pragmas(&half_a)),
        ("part_b.rs".to_string(), with_pragmas(&half_b)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileClass;

    const TAINT_CASE: &str = "\
// a corpus-shaped taint case
pub fn build(v: &SimVec<u64>) {
    // sgx-lint: allow(untracked-access) boundary audited here
    let keys = v.as_slice_untracked();
    helper(keys);
}

pub fn helper(keys: &[u64]) -> u64 {
    keys[0]
}

pub fn unrelated() -> u64 {
    7
}
";

    fn lint_rules(src: &str) -> Vec<String> {
        crate::analyze_single("case.rs", FileClass::OperatorLib, src)
            .findings
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn transforms_are_deterministic() {
        for t in [
            Transform::Rename { seed: 7 },
            Transform::Reorder { seed: 7 },
            Transform::Wrap { depth: 2 },
            Transform::Seqlen { chain: 3 },
            Transform::Nest { depth: 2 },
            Transform::Noise { seed: 7 },
            Transform::Compose { seed: 7 },
        ] {
            let a = apply(TAINT_CASE, &t);
            let b = apply(TAINT_CASE, &t);
            assert_eq!(a, b, "{} not deterministic", t.label());
            assert!(a.is_some(), "{} did not apply", t.label());
        }
    }

    #[test]
    fn rename_respects_protected_names() {
        let out = apply(TAINT_CASE, &Transform::Rename { seed: 1 }).unwrap();
        assert!(out.contains("as_slice_untracked"), "{out}");
        assert!(!out.contains("fn helper("), "helper should be renamed: {out}");
        assert!(!out.contains("let keys "), "binder should be renamed: {out}");
        // The verdict is unchanged: the taint rule still fires.
        assert_eq!(lint_rules(&out), ["untracked-slice-taint"], "{out}");
    }

    #[test]
    fn rename_targets_are_fresh_and_uniform() {
        let src = "fn a() { b(); } fn b() { let x = 1; let y = x; }";
        let out = apply(src, &Transform::Rename { seed: 3 }).unwrap();
        // Every original defined name is gone as a standalone identifier.
        let lx = tokenize(&out);
        for gone in ["a", "b", "x", "y"] {
            assert!(
                !lx.tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == gone),
                "{gone} survived in {out}"
            );
        }
    }

    #[test]
    fn reorder_permutes_items_but_keeps_bytes() {
        let src = "//! docs\nfn a() {}\n\n// note on b\nfn b() {}\n\nfn c() {}\n";
        let out = apply(src, &Transform::Reorder { seed: 1 }).unwrap();
        assert_ne!(out, src);
        let mut a: Vec<&str> = src.lines().collect();
        let mut b: Vec<&str> = out.lines().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "reorder must only permute line runs");
        assert!(out.starts_with("//! docs"), "file docs stay pinned: {out}");
        // The comment attached to b still sits directly above fn b.
        let pos_comment = out.find("// note on b").unwrap();
        let pos_b = out.find("fn b()").unwrap();
        assert!(pos_b > pos_comment && pos_b - pos_comment < 16);
    }

    #[test]
    fn wrap_redirects_calls_through_chain() {
        let out = apply(TAINT_CASE, &Transform::Wrap { depth: 2 }).unwrap();
        assert!(out.contains("helper_w2(keys)"), "{out}");
        assert!(out.contains("fn helper_w1(keys: &[u64]) -> u64 { helper(keys) }"), "{out}");
        assert!(out.contains("fn helper_w2(keys: &[u64]) -> u64 { helper_w1(keys) }"), "{out}");
        // Still detected (via the transitive taint fix).
        assert_eq!(lint_rules(&out), ["untracked-slice-taint"], "{out}");
    }

    #[test]
    fn wrap_handles_methods_in_inherent_impls() {
        let src = "struct P;\nimpl P {\n    fn go(&self, xs: &[u64]) -> u64 { xs[0] }\n}\nfn run(p: &P, xs: &[u64]) -> u64 { p.go(xs) }\n";
        let out = apply(src, &Transform::Wrap { depth: 1 }).unwrap();
        assert!(out.contains("p.go_w1(xs)"), "{out}");
        assert!(out.contains("fn go_w1(&self, xs: &[u64]) -> u64 { self.go(xs) }"), "{out}");
    }

    #[test]
    fn wrap_skips_trait_impls_and_recursion() {
        let trait_impl = "struct P;\nimpl Default for P {\n    fn default() -> P { P }\n}\n";
        assert_eq!(apply(trait_impl, &Transform::Wrap { depth: 1 }), None);
        let recursive = "fn f(n: u64) -> u64 { f(n) }";
        assert_eq!(apply(recursive, &Transform::Wrap { depth: 1 }), None);
    }

    #[test]
    fn seqlen_splits_lets_on_one_line() {
        let out = apply(TAINT_CASE, &Transform::Seqlen { chain: 3 }).unwrap();
        assert!(
            out.contains("let keys_s1 = v.as_slice_untracked(); let keys_s2 = keys_s1; let keys = keys_s2;"),
            "{out}"
        );
        assert_eq!(out.lines().count(), TAINT_CASE.lines().count(), "line structure must hold");
        assert_eq!(lint_rules(&out), ["untracked-slice-taint"], "{out}");
    }

    #[test]
    fn seqlen_keeps_annotations_and_mut() {
        let src = "fn f() { let mut m: Vec<u64> = Vec::new(); m.push(1); }";
        let out = apply(src, &Transform::Seqlen { chain: 2 }).unwrap();
        assert!(out.contains("let m_s1: Vec<u64> = Vec::new(); let mut m = m_s1;"), "{out}");
    }

    #[test]
    fn seqlen_skips_patterns_and_if_let() {
        let src = "fn f(o: Option<u32>) -> u32 { if let Some(x) = o { x } else { 0 } }";
        assert_eq!(apply(src, &Transform::Seqlen { chain: 3 }), None);
    }

    #[test]
    fn nest_wraps_body_below_file_docs() {
        let src = "//! docs\n\n// sgx-lint: allow(unsafe-code) audited\nfn f() { unsafe { } }\n";
        let out = apply(src, &Transform::Nest { depth: 2 }).unwrap();
        assert!(out.contains("mod shell_0 {\nmod shell_1 {\n// sgx-lint: allow(unsafe-code)"), "{out}");
        assert!(out.starts_with("//! docs"), "{out}");
        assert!(out.ends_with("}\n}\n"), "{out}");
        // The marker still suppresses: no findings on the nested variant.
        assert!(lint_rules(&out).is_empty(), "{out}");
    }

    #[test]
    fn noise_never_splits_marker_adjacency() {
        let out = apply(TAINT_CASE, &Transform::Noise { seed: 5 }).unwrap();
        // The allow-marker must still sit directly above its statement.
        let marker_at = out.find("// sgx-lint: allow(untracked-access)").unwrap();
        let stmt_at = out.find("let keys").unwrap();
        let between = &out[marker_at..stmt_at];
        assert_eq!(between.matches('\n').count(), 1, "{out}");
        assert_eq!(lint_rules(&out), ["untracked-slice-taint"], "{out}");
    }

    #[test]
    fn compose_stacks_transforms() {
        let out = apply(TAINT_CASE, &Transform::Compose { seed: 11 }).unwrap();
        assert!(out.contains("mod shell_0"), "{out}");
        assert_ne!(out, TAINT_CASE);
        assert_eq!(lint_rules(&out), ["untracked-slice-taint"], "{out}");
    }

    #[test]
    fn labels_carry_parameters() {
        assert_eq!(Transform::Wrap { depth: 2 }.label(), "wrap[d2]");
        assert_eq!(Transform::Seqlen { chain: 3 }.label(), "seqlen[n3]");
        assert_eq!(Transform::Rename { seed: 9 }.label(), "rename[s9]");
        assert_eq!(Transform::Wrap { depth: 2 }.kind(), "wrap");
        assert_eq!(Transform::Alias { seed: 4 }.label(), "alias[s4]");
        assert_eq!(Transform::Dyncall.label(), "dyncall");
        assert_eq!(Transform::Xsplit { seed: 4 }.kind(), "xsplit");
    }

    const CONSERVATION_CASE: &str = "\
pub struct Counters { pub loads: u64 }
impl Counters { fn total(&self) -> u64 { self.loads } }
fn charge(c: &mut Counters) { c.loads += 1; }
";

    #[test]
    fn alias_reroutes_references_but_keeps_the_definition() {
        let out = apply(CONSERVATION_CASE, &Transform::Alias { seed: 2 }).unwrap();
        assert!(out.contains("pub struct Counters {"), "{out}");
        assert!(out.contains("pub type Counters_"), "{out}");
        assert!(!out.contains("impl Counters {"), "impl should go through the alias: {out}");
        assert!(!out.contains("&mut Counters)"), "signature should go through the alias: {out}");
        // The own-impl read still does not attribute: the alias-resolved
        // rule keeps flagging the unattributed charge.
        assert_eq!(lint_rules(&out), ["counter-conservation"], "{out}");
    }

    #[test]
    fn alias_skips_generic_structs() {
        let src = "pub struct Holder<T> { pub v: T }\nfn mk() -> Holder<u64> { Holder { v: 1 } }\n";
        assert_eq!(apply(src, &Transform::Alias { seed: 1 }), None);
    }

    #[test]
    fn dyncall_routes_calls_through_a_trait_object() {
        let out = apply(TAINT_CASE, &Transform::Dyncall).unwrap();
        assert!(out.contains("helper_dyncall(keys)"), "{out}");
        assert!(out.contains("trait HelperDyn"), "{out}");
        assert!(out.contains("let obj: &dyn HelperDyn = &HelperObj;"), "{out}");
        // The taint walk crosses the dynamic-dispatch edge.
        assert_eq!(lint_rules(&out), ["untracked-slice-taint"], "{out}");
    }

    #[test]
    fn dyncall_skips_generics_methods_and_main() {
        let generic = "fn id<T>(x: T) -> T { x }\nfn use_it() -> u64 { id(1u64) }\n";
        assert_eq!(apply(generic, &Transform::Dyncall), None);
        let method = "struct P;\nimpl P { fn go(&self) -> u64 { 1 } }\nfn run(p: &P) -> u64 { p.go() }\n";
        assert_eq!(apply(method, &Transform::Dyncall), None);
    }

    #[test]
    fn xsplit_produces_two_files_and_replicates_pragmas() {
        let src = "// sgx-lint: charge-module\nimpl M {\nfn commit(&mut self) { self.cycles += 1.0; }\n}\nfn a() -> u64 { 1 }\nfn b() -> u64 { a() }\n";
        let files = apply_ws(src, &Transform::Xsplit { seed: 3 }).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].0, "part_a.rs");
        assert_eq!(files[1].0, "part_b.rs");
        for (_, body) in &files {
            assert!(
                body.lines().any(|l| l.trim() == "// sgx-lint: charge-module"),
                "pragma must reach both halves: {body}"
            );
        }
        // Every source line survives in exactly one half (plus replicated
        // pragma/wrapper lines).
        let joined = format!("{}{}", files[0].1, files[1].1);
        assert!(joined.contains("fn commit"), "{joined}");
        assert!(joined.contains("fn a()"), "{joined}");
        // Deterministic.
        assert_eq!(files, apply_ws(src, &Transform::Xsplit { seed: 3 }).unwrap());
    }

    #[test]
    fn xsplit_pins_fault_tick_definers_into_the_set() {
        let src = "impl M {\nfn fault_tick(&mut self) {}\n}\nfn x() -> u64 { 1 }\nfn y() -> u64 { x() }\n";
        let files = apply_ws(src, &Transform::Xsplit { seed: 1 }).unwrap();
        for (_, body) in &files {
            assert!(
                body.lines().any(|l| l.trim() == "// sgx-lint: fault-tick-module"),
                "both halves must stay in the fault-tick set: {body}"
            );
        }
    }

    #[test]
    fn xsplit_skips_calibration_files_and_single_file_transforms_skip_xsplit() {
        let cal = "// sgx-lint: calibration-file\npub const A: usize = 64; // uarch: line\n";
        assert_eq!(apply_ws(cal, &Transform::Xsplit { seed: 1 }), None);
        assert_eq!(apply(TAINT_CASE, &Transform::Xsplit { seed: 1 }), None);
        // Single-file transforms through apply_ws come back as one file.
        let ws = apply_ws(TAINT_CASE, &Transform::Wrap { depth: 1 }).unwrap();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].0, "case.rs");
    }
}
