//! Lightweight intraprocedural dataflow over the token stream.
//!
//! The semantic rules in [`crate::semantic`] started as pure call-graph
//! matching: "does function X transitively call function Y". The
//! charge-integrity rules added for the hot-path optimization program
//! (ROADMAP item 2) need one notch more: *which values are mutated where*.
//! This module extracts exactly that — still no expression trees, no type
//! inference — from the same token/item model [`crate::parse`] produces:
//!
//! * [`field_writes`] — every assignment target in a body as a dotted
//!   *chain* (`self.m.counters.tlb_misses += 1` →
//!   `["self","m","counters","tlb_misses"]`), with compound (`+=`, `-=`,
//!   `*=`, `/=`, …) distinguished from plain `=`. Charge sites are always
//!   compound — a plain `=` is a reset/install, not a charge — so the
//!   charge-escape rule keys on `compound` and leaves `wall = 0.0`-style
//!   re-anchoring alone.
//! * [`receiver_aliases`] + [`resolve_receiver`] — `let c = &mut
//!   self.counters;` style reborrows, so a write through `c` still
//!   resolves to the `counters` chain. Bounded, per-function, def-use
//!   only: exactly the laundering the alias variants generate.
//! * [`type_aliases`] + [`resolve_alias`] — `type CountersAlias =
//!   Counters;` declarations, so `impl CountersAlias` blocks resolve to
//!   the underlying struct (the ROADMAP item 5 blind spot in
//!   counter-conservation's own-impl detection).
//! * [`parse_enums`] + [`variant_uses`] — enum variant constructions vs
//!   match-arm handlers (`EvKind::Arrive { .. } =>`), for the
//!   des-invariant event-totality check: every event kind a DES enqueues
//!   must have an explicit arm in the event loop.
//!
//! Everything here is deliberately *syntactic* and bounded (fixed
//! iteration caps, no recursion), matching the crate's "fast, offline,
//! dependency-free" contract; the rules own the semantic interpretation.

use crate::tokenizer::{Tok, TokKind};
use std::collections::BTreeMap;

fn is(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn p(t: &Tok, c: u8) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Maximum alias-chain hops [`resolve_alias`] / [`resolve_receiver`]
/// follow. Deep enough for any human-written chain; bounds adversarial
/// `type A = B; type B = C; …` cycles.
const MAX_ALIAS_HOPS: usize = 8;

/// One assignment site: a dotted/indexed chain ending in an assignment
/// operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldWrite {
    /// 1-based line of the chain's first identifier.
    pub line: u32,
    /// Token index of the chain's first identifier (for mask lookups).
    pub tok: usize,
    /// Identifier segments of the assignment target, in order. Index
    /// expressions are skipped (`clocks[w] += t` → `["clocks"]`); tuple
    /// field accesses contribute a `"#"` placeholder segment.
    pub chain: Vec<String>,
    /// `true` for compound assignment (`+=`, `-=`, `*=`, `/=`, `%=`,
    /// `|=`, `&=`, `^=`), `false` for plain `=`.
    pub compound: bool,
}

/// Skip a balanced bracket run starting at `open` (which must hold the
/// opening byte). Returns the index just past the matching closer, or
/// `toks.len()` if unterminated.
fn skip_balanced(toks: &[Tok], open: usize, o: u8, c: u8) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if p(t, o) {
            depth += 1;
        } else if p(t, c) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    toks.len()
}

/// Walk one chain starting at the identifier at `i`. Returns the segments
/// and the index just past the chain, or `None` if the chain ends in a
/// call (`a.b.push(x)` is not an assignment target).
fn walk_chain(toks: &[Tok], i: usize, end: usize) -> Option<(Vec<String>, usize)> {
    let mut chain = vec![toks[i].text.clone()];
    let mut j = i + 1;
    loop {
        if j >= end {
            break;
        }
        if p(&toks[j], b'[') {
            j = skip_balanced(toks, j, b'[', b']');
            continue;
        }
        if p(&toks[j], b'.') {
            match toks.get(j + 1) {
                Some(n) if n.kind == TokKind::Ident => {
                    // Method call ends the chain as a non-target.
                    if toks.get(j + 2).is_some_and(|t| p(t, b'(')) {
                        return None;
                    }
                    chain.push(n.text.clone());
                    j += 2;
                    continue;
                }
                Some(n) if n.kind == TokKind::Num => {
                    // Tuple index `pair.0`; the tokenizer drops the digits.
                    chain.push("#".to_string());
                    j += 2;
                    continue;
                }
                _ => break,
            }
        }
        break;
    }
    Some((chain, j))
}

/// Extract every assignment site in the token range `[start, end)`.
///
/// A site is an identifier chain followed by an assignment operator.
/// Comparison operators never match: `==` fails the plain-`=` lookahead
/// and `<=`/`>=`/`!=` put their extra byte *before* the `=`, outside the
/// compound-op set.
pub fn field_writes(toks: &[Tok], range: (usize, usize)) -> Vec<FieldWrite> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        // Chains start at an identifier that is not itself a `.`/`::`
        // continuation of an earlier path.
        if t.kind != TokKind::Ident
            || (i > 0 && (p(&toks[i - 1], b'.') || p(&toks[i - 1], b':')))
        {
            i += 1;
            continue;
        }
        let Some((chain, j)) = walk_chain(toks, i, end) else {
            i += 1;
            continue;
        };
        let compound = toks.get(j).is_some_and(|o| {
            matches!(
                o.kind,
                TokKind::Punct(b'+')
                    | TokKind::Punct(b'-')
                    | TokKind::Punct(b'*')
                    | TokKind::Punct(b'/')
                    | TokKind::Punct(b'%')
                    | TokKind::Punct(b'|')
                    | TokKind::Punct(b'&')
                    | TokKind::Punct(b'^')
            )
        }) && toks.get(j + 1).is_some_and(|e| p(e, b'='))
            // `&& x == y` style: the byte before `=` must be the operator
            // itself, and the token after `=` must not be another `=`.
            && !toks.get(j + 2).is_some_and(|e| p(e, b'='));
        let plain = !compound
            && toks.get(j).is_some_and(|e| p(e, b'='))
            && !toks.get(j + 1).is_some_and(|e| p(e, b'='));
        if compound || plain {
            out.push(FieldWrite { line: t.line, tok: i, chain, compound });
        }
        // Resume after the chain (inner segments are `.`-guarded anyway).
        i = (j).max(i + 1);
    }
    out
}

/// `let [mut] name = [&][mut] chain ;` reborrow bindings inside a body:
/// `name` → the chain it aliases. Initializers of any other shape are not
/// receiver aliases.
pub fn receiver_aliases(toks: &[Tok], range: (usize, usize)) -> BTreeMap<String, Vec<String>> {
    let (start, end) = range;
    let mut out = BTreeMap::new();
    let mut i = start;
    while i < end.min(toks.len()) {
        if !is(&toks[i], "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| is(t, "mut")) {
            j += 1;
        }
        let Some(name) = toks.get(j) else { break };
        if name.kind != TokKind::Ident || !toks.get(j + 1).is_some_and(|t| p(t, b'=')) {
            i += 1;
            continue;
        }
        let mut k = j + 2;
        while toks.get(k).is_some_and(|t| p(t, b'&') || is(t, "mut")) {
            k += 1;
        }
        if k < end && toks[k].kind == TokKind::Ident {
            if let Some((chain, past)) = walk_chain(toks, k, end) {
                if toks.get(past).is_some_and(|t| p(t, b';')) {
                    out.insert(name.text.clone(), chain);
                }
            }
        }
        i = j + 1;
    }
    out
}

/// Substitute the head of `chain` through `aliases` to a fixpoint
/// (bounded): `c.tlb_misses` with `c → self.m.counters` becomes
/// `self.m.counters.tlb_misses`.
pub fn resolve_receiver(chain: &[String], aliases: &BTreeMap<String, Vec<String>>) -> Vec<String> {
    let mut out: Vec<String> = chain.to_vec();
    for _ in 0..MAX_ALIAS_HOPS {
        let Some(head) = out.first() else { break };
        let Some(sub) = aliases.get(head) else { break };
        // Self-referential binding (`let c = c;`) cannot make progress.
        if sub.first() == out.first() && sub.len() == 1 {
            break;
        }
        let tail: Vec<String> = out[1..].to_vec();
        out = sub.clone();
        out.extend(tail);
    }
    out
}

/// `type Alias = Target;` declarations in the token stream (any scope).
/// Only the plain single-identifier form matters to the rules; generic or
/// path-qualified targets record their first identifier, which is simply
/// never a conserved struct name.
pub fn type_aliases(toks: &[Tok]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for i in 0..toks.len() {
        if !is(&toks[i], "type") {
            continue;
        }
        // Not `impl Trait for X { type Assoc … }` paths like `T::type`.
        if i > 0 && p(&toks[i - 1], b':') {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { continue };
        if name.kind != TokKind::Ident {
            continue;
        }
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| p(t, b'<')) {
            j = skip_balanced(toks, j, b'<', b'>');
        }
        if !toks.get(j).is_some_and(|t| p(t, b'=')) {
            continue;
        }
        if let Some(target) = toks.get(j + 1) {
            if target.kind == TokKind::Ident {
                out.entry(name.text.clone()).or_insert_with(|| target.text.clone());
            }
        }
    }
    out
}

/// Resolve `name` through `type` aliases (bounded walk). Returns the final
/// underlying name — `name` itself when it is not an alias.
pub fn resolve_alias<'a>(map: &'a BTreeMap<String, String>, name: &'a str) -> &'a str {
    let mut cur = name;
    for _ in 0..MAX_ALIAS_HOPS {
        match map.get(cur) {
            Some(next) if next != cur => cur = next,
            _ => break,
        }
    }
    cur
}

/// One `enum` item (name + variant names). [`crate::parse`] only models
/// fns/structs/impls; the des-invariant totality check needs enums too.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// Parse every `enum Name { Variant, Variant(…), Variant { … }, … }` in
/// the token stream.
pub fn parse_enums(toks: &[Tok]) -> Vec<EnumItem> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is(&toks[i], "enum") || !toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let line = toks[i].line;
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| p(t, b'<')) {
            j = skip_balanced(toks, j, b'<', b'>');
        }
        if !toks.get(j).is_some_and(|t| p(t, b'{')) {
            i += 1;
            continue;
        }
        let close = skip_balanced(toks, j, b'{', b'}') - 1;
        let mut variants = Vec::new();
        let mut k = j + 1;
        while k < close {
            // Variant attributes.
            if p(&toks[k], b'#') && toks.get(k + 1).is_some_and(|t| p(t, b'[')) {
                k = skip_balanced(toks, k + 1, b'[', b']');
                continue;
            }
            if toks[k].kind == TokKind::Ident {
                variants.push(toks[k].text.clone());
                // Skip the payload / discriminant to the next top-level comma.
                let mut depth = 0i32;
                k += 1;
                while k < close {
                    match toks[k].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                            depth += 1
                        }
                        TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                            depth -= 1
                        }
                        TokKind::Punct(b',') if depth == 0 => {
                            k += 1;
                            break;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                continue;
            }
            k += 1;
        }
        out.push(EnumItem { name, line, variants });
        i = close + 1;
    }
    out
}

/// How one `Enum::Variant` path is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathUse {
    /// Expression position: the variant is constructed.
    Construct,
    /// Pattern position: an explicit `match` arm (`… =>`, an or-pattern
    /// `… |`, or a guarded arm `… if cond =>`).
    MatchArm,
}

/// One `Enum::Variant` occurrence.
#[derive(Debug, Clone)]
pub struct VariantUse {
    /// Enum path head (`EvKind` in `EvKind::Arrive`).
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
    /// 1-based line of the variant identifier.
    pub line: u32,
    /// Token index of the enum-name identifier (for mask lookups).
    pub tok: usize,
    /// Construction vs match arm.
    pub usage: PathUse,
}

/// Find every `Name::Variant` path and classify it. The classifier looks
/// *past* one balanced payload group (`{ … }` / `( … )`) after the
/// variant: `=>`, `|`, or a match guard `if` mean pattern position,
/// anything else is a construction.
pub fn variant_uses(toks: &[Tok]) -> Vec<VariantUse> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `Name :: Variant`, where `Name` is not itself a path segment.
        if i > 0 && p(&toks[i - 1], b':') {
            continue;
        }
        if !(toks.get(i + 1).is_some_and(|n| p(n, b':'))
            && toks.get(i + 2).is_some_and(|n| p(n, b':'))
            && toks.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident))
        {
            continue;
        }
        let variant = &toks[i + 3];
        // Longer paths (`a::b::c`) are module paths, not enum variants.
        if toks.get(i + 4).is_some_and(|n| p(n, b':')) {
            continue;
        }
        let mut k = i + 4;
        if toks.get(k).is_some_and(|n| p(n, b'{')) {
            k = skip_balanced(toks, k, b'{', b'}');
        } else if toks.get(k).is_some_and(|n| p(n, b'(')) {
            k = skip_balanced(toks, k, b'(', b')');
        }
        let usage = if (toks.get(k).is_some_and(|n| p(n, b'='))
            && toks.get(k + 1).is_some_and(|n| p(n, b'>')))
            || toks.get(k).is_some_and(|n| p(n, b'|'))
            || toks.get(k).is_some_and(|n| is(n, "if"))
        {
            PathUse::MatchArm
        } else {
            PathUse::Construct
        };
        out.push(VariantUse {
            enum_name: t.text.clone(),
            variant: variant.text.clone(),
            line: variant.line,
            tok: i,
            usage,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn writes(src: &str) -> Vec<FieldWrite> {
        let lx = tokenize(src);
        field_writes(&lx.tokens, (0, lx.tokens.len()))
    }

    #[test]
    fn chains_ops_and_indexing() {
        let w = writes("fn f(&mut self) { self.m.counters.tlb_misses += 1; self.clocks[w] += t; self.wall = 0.0; }");
        let chains: Vec<(Vec<&str>, bool)> = w
            .iter()
            .map(|x| (x.chain.iter().map(|s| s.as_str()).collect(), x.compound))
            .collect();
        assert!(chains.contains(&(vec!["self", "m", "counters", "tlb_misses"], true)));
        assert!(chains.contains(&(vec!["self", "clocks"], true)));
        assert!(chains.contains(&(vec!["self", "wall"], false)), "{chains:?}");
    }

    #[test]
    fn comparisons_and_calls_are_not_writes() {
        let w = writes("fn f() { if a.x == 1 { } if b <= 2 { } q.push(3); c.y().z += 1; }");
        // `a.x ==` reads; `q.push(…)` is a call; `c.y().z` ends in a call
        // before the field, so the chain aborts at the call.
        assert!(
            w.iter().all(|x| x.chain != ["a", "x"] && x.chain.first().map(String::as_str) != Some("q")),
            "{w:?}"
        );
    }

    #[test]
    fn all_compound_operators_detected() {
        let w = writes("fn f() { a += 1; b -= 1; c *= 2; d /= 2; e %= 2; g |= 1; h &= 1; k ^= 1; }");
        assert_eq!(w.iter().filter(|x| x.compound).count(), 8, "{w:?}");
    }

    #[test]
    fn reborrows_resolve_to_the_underlying_chain() {
        let lx = tokenize("fn f(&mut self) { let c = &mut self.m.counters; c.loads += 1; }");
        let al = receiver_aliases(&lx.tokens, (0, lx.tokens.len()));
        let w = field_writes(&lx.tokens, (0, lx.tokens.len()));
        let hit = w.iter().find(|x| x.compound).unwrap();
        let resolved = resolve_receiver(&hit.chain, &al);
        assert_eq!(resolved, ["self", "m", "counters", "loads"]);
    }

    #[test]
    fn alias_resolution_is_bounded_on_cycles() {
        let lx = tokenize("type A = B; type B = A;");
        let map = type_aliases(&lx.tokens);
        // Terminates; lands on one of the cycle members.
        let r = resolve_alias(&map, "A");
        assert!(r == "A" || r == "B");
        let lx = tokenize("type CountersAlias = Counters;\ntype Deep = CountersAlias;");
        let map = type_aliases(&lx.tokens);
        assert_eq!(resolve_alias(&map, "Deep"), "Counters");
        assert_eq!(resolve_alias(&map, "Counters"), "Counters");
    }

    #[test]
    fn associated_types_do_not_alias_structs() {
        let lx = tokenize("impl Iterator for X { type Item = Counters; fn next(&mut self) -> Option<Counters> { None } }");
        let map = type_aliases(&lx.tokens);
        // Recorded, but harmless: `Item` is never an impl self-type.
        assert_eq!(resolve_alias(&map, "Item"), "Counters");
    }

    #[test]
    fn enums_with_payloads_and_attributes() {
        let lx = tokenize(
            "#[derive(Debug)]\nenum EvKind {\n  Arrive { tenant: usize, session: usize },\n  #[allow(dead_code)]\n  JobDone(usize, Vec<u8>),\n  Halt = 3,\n}",
        );
        let enums = parse_enums(&lx.tokens);
        assert_eq!(enums.len(), 1);
        assert_eq!(enums[0].name, "EvKind");
        assert_eq!(enums[0].variants, ["Arrive", "JobDone", "Halt"]);
    }

    #[test]
    fn constructions_vs_match_arms() {
        let src = "fn f(&mut self) {\n  self.push(EvKind::Arrive { tenant, session });\n  match ev.kind {\n    EvKind::Arrive { tenant, session } => self.on_arrive(tenant, session),\n    EvKind::JobDone(s, w) if s > 0 => self.done(s, w),\n    EvKind::Halt | EvKind::Drain => {}\n  }\n}";
        let lx = tokenize(src);
        let uses = variant_uses(&lx.tokens);
        let of = |v: &str| -> Vec<PathUse> {
            uses.iter().filter(|u| u.variant == v).map(|u| u.usage).collect()
        };
        assert_eq!(of("Arrive"), [PathUse::Construct, PathUse::MatchArm]);
        assert_eq!(of("JobDone"), [PathUse::MatchArm]);
        assert_eq!(of("Halt"), [PathUse::MatchArm]);
        assert_eq!(of("Drain"), [PathUse::MatchArm]);
    }

    #[test]
    fn module_paths_are_not_variants() {
        let lx = tokenize("fn f() { std::mem::take(&mut x); sgx_sim::stream_unit(s, t, k); }");
        let uses = variant_uses(&lx.tokens);
        assert!(uses.iter().all(|u| u.enum_name != "std"), "{uses:?}");
        // Two-segment paths like `sgx_sim::stream_unit` do match the shape;
        // the rules filter by known enum names, so this stays harmless.
    }
}
