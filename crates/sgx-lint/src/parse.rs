//! Item-level parser on top of the tokenizer.
//!
//! Extracts just enough structure for the semantic rules: functions (name,
//! parameter names, body token range, call sites with classified
//! arguments), structs (field names and lines, body range) and impl blocks
//! (self type, body range). It is a linear scan over the token stream — no
//! expression trees, no type resolution — which is all the call-graph and
//! taint rules need and keeps the crate dependency-free.
//!
//! Known, accepted approximations (documented so nobody trusts this for
//! more than it does):
//!
//! * functions are keyed by *name*; two crates defining `fn helper` alias
//!   in the symbol table (the semantic rules treat every candidate).
//! * tuple-pattern parameters (`(a, b): (u32, u32)`) are not named, so
//!   taint does not follow them.
//! * commas inside `a < b, c > d` comparisons could mis-split arguments;
//!   the workspace style never hits this.

use crate::tokenizer::{Lexed, Tok, TokKind};

/// How one call argument looks at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Arg {
    /// Exactly one identifier (`helper(keys)`), trackable by name.
    Ident(String),
    /// Contains a direct `as_slice_untracked`/`as_mut_slice_untracked`
    /// call (`helper(v.as_slice_untracked())`).
    Untracked,
    /// Anything else — literals, arithmetic, nested calls.
    Other,
}

/// One function/method call inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (for `x.helper(…)` this is `helper`).
    pub callee: String,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// Token index of the callee identifier (for test-mask lookups).
    pub tok: usize,
    /// True for method-call syntax (`recv.callee(…)`).
    pub method: bool,
    /// Classified arguments, in order. `self` receivers are not included.
    pub args: Vec<Arg>,
}

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (the name is the next token). The
    /// variant generator uses this to slice signatures out of the source.
    pub kw_tok: usize,
    /// Parameter names in order; a `self` receiver is recorded as `"self"`.
    pub params: Vec<String>,
    /// Token index range `[start, end)` of the body *inside* the braces.
    /// Empty for bodyless trait-method declarations.
    pub body: (usize, usize),
    /// Calls made inside the body.
    pub calls: Vec<CallSite>,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// One `struct` item with named fields (tuple/unit structs have none).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields.
    pub fields: Vec<Field>,
    /// Token index range `[start, end)` inside the braces.
    pub body: (usize, usize),
}

/// One `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// The self type (`Counters` in `impl Default for Counters`).
    pub type_name: String,
    /// Token index range `[start, end)` inside the braces.
    pub body: (usize, usize),
}

/// All items parsed from one file.
#[derive(Debug, Default, Clone)]
pub struct Items {
    /// All `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// All `struct` items, in source order.
    pub structs: Vec<StructItem>,
    /// All `impl` blocks, in source order.
    pub impls: Vec<ImplItem>,
}

/// Keywords that can precede `(` without being calls.
const NON_CALL_IDENTS: [&str; 14] = [
    "fn", "if", "while", "for", "match", "return", "let", "loop", "in", "as", "impl", "struct",
    "move", "mut",
];

fn is(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn p(t: &Tok, c: u8) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Skip a balanced `<…>` generics run starting at `i` (which must point at
/// `<`). Returns the index just past the matching `>`. Bounded so a stray
/// comparison `<` cannot eat the file.
fn skip_generics(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    for j in i..(i + 256).min(toks.len()) {
        if p(&toks[j], b'<') {
            depth += 1;
        } else if p(&toks[j], b'>') {
            depth -= 1;
            if depth <= 0 {
                return j + 1;
            }
        }
    }
    i + 1
}

/// Find the matching close brace for the `{` at `open`, returning the
/// index of the `}` (or `toks.len()` if unterminated).
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if p(t, b'{') {
            depth += 1;
        } else if p(t, b'}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

/// Parse all items out of a lexed file.
pub fn parse(lexed: &Lexed) -> Items {
    let toks = &lexed.tokens;
    let mut items = Items::default();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if is(t, "fn") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let (item, next) = parse_fn(toks, i);
            items.fns.push(item);
            // Do NOT jump past the body: nested fns/closures inside it must
            // still be discovered, so only step over `fn name`.
            i = (i + 2).min(next);
        } else if is(t, "struct") && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
            let (item, next) = parse_struct(toks, i);
            items.structs.push(item);
            i = next;
        } else if is(t, "impl") {
            let (item, next) = parse_impl(toks, i);
            if let Some(item) = item {
                items.impls.push(item);
            }
            // Step inside the impl body so its fns are parsed too.
            i = next;
        } else {
            i += 1;
        }
    }
    items
}

/// Parse `fn name …(params) … { body }` starting at the `fn` token.
/// Returns the item and the index just past `fn name`.
fn parse_fn(toks: &[Tok], at: usize) -> (FnItem, usize) {
    let name = toks[at + 1].text.clone();
    let line = toks[at].line;
    let mut j = at + 2;
    // Optional generics.
    if toks.get(j).is_some_and(|t| p(t, b'<')) {
        j = skip_generics(toks, j);
    }
    // Parameter list.
    let mut params = Vec::new();
    if toks.get(j).is_some_and(|t| p(t, b'(')) {
        let mut depth = 0i32;
        while j < toks.len() {
            let t = &toks[j];
            if p(t, b'(') {
                depth += 1;
            } else if p(t, b')') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if depth == 1 && t.kind == TokKind::Ident {
                if t.text == "self" {
                    // `self`, `&self`, `&mut self`, `mut self`.
                    params.push("self".to_string());
                } else if t.text != "mut" && toks.get(j + 1).is_some_and(|n| p(n, b':'))
                    // `x: T`, not a path segment `std::…` (previous token
                    // must not be `:`).
                    && !(j > 0 && p(&toks[j - 1], b':'))
                    // …and not the type side of a previous param: only the
                    // first `ident:` after `(`/`,` is a binder.
                    && (p(&toks[j - 1], b'(') || p(&toks[j - 1], b',')
                        || is(&toks[j - 1], "mut"))
                {
                    params.push(t.text.clone());
                }
            }
            j += 1;
        }
    }
    // Scan to the body `{` (skipping return type / where clause), or a `;`
    // for bodyless trait declarations.
    let mut body = (0usize, 0usize);
    let mut k = j;
    while k < toks.len() {
        if p(&toks[k], b';') {
            break;
        }
        if p(&toks[k], b'{') {
            let close = match_brace(toks, k);
            body = (k + 1, close);
            break;
        }
        // `-> Foo<Bar>` return types: skip generics so a `>` cannot be
        // misread; everything else advances one token.
        if p(&toks[k], b'<') {
            k = skip_generics(toks, k);
        } else {
            k += 1;
        }
    }
    let calls = if body.1 > body.0 { find_calls(toks, body.0, body.1) } else { Vec::new() };
    (FnItem { name, line, kw_tok: at, params, body, calls }, at + 2)
}

/// Parse `struct Name { fields }` starting at the `struct` token. Returns
/// the item and the index to resume scanning at.
fn parse_struct(toks: &[Tok], at: usize) -> (StructItem, usize) {
    let name = toks[at + 1].text.clone();
    let line = toks[at].line;
    let mut j = at + 2;
    if toks.get(j).is_some_and(|t| p(t, b'<')) {
        j = skip_generics(toks, j);
    }
    // Unit struct `struct X;` or tuple struct `struct X(…);` → no fields.
    if !toks.get(j).is_some_and(|t| p(t, b'{')) {
        return (StructItem { name, line, fields: Vec::new(), body: (j, j) }, j);
    }
    let close = match_brace(toks, j);
    let mut fields = Vec::new();
    let mut paren = 0i32;
    let mut brace = 0i32;
    for k in j + 1..close {
        let t = &toks[k];
        match t.kind {
            TokKind::Punct(b'(') => paren += 1,
            TokKind::Punct(b')') => paren -= 1,
            TokKind::Punct(b'{') => brace += 1,
            TokKind::Punct(b'}') => brace -= 1,
            TokKind::Ident
                if paren == 0
                    && brace == 0
                    && toks.get(k + 1).is_some_and(|n| p(n, b':'))
                    && !p(&toks[k - 1], b':')
                    && (p(&toks[k - 1], b'{') || p(&toks[k - 1], b',') || p(&toks[k - 1], b']')
                        || is(&toks[k - 1], "pub") || p(&toks[k - 1], b')')) =>
            {
                fields.push(Field { name: t.text.clone(), line: t.line });
            }
            _ => {}
        }
    }
    (StructItem { name, line, fields, body: (j + 1, close) }, close + 1)
}

/// Parse `impl … { … }` starting at the `impl` token. Returns the item
/// (None for malformed input) and the index of the first body token, so
/// the caller continues scanning *inside* the impl.
fn parse_impl(toks: &[Tok], at: usize) -> (Option<ImplItem>, usize) {
    // Collect angle-depth-0 identifiers up to the `{`; the self type is the
    // identifier after `for` (trait impls) or the last one (inherent).
    let mut angle = 0i32;
    let mut after_for: Option<String> = None;
    let mut last: Option<String> = None;
    let mut saw_for = false;
    let mut j = at + 1;
    while j < toks.len() && !p(&toks[j], b'{') {
        let t = &toks[j];
        if p(t, b'<') {
            angle += 1;
        } else if p(t, b'>') {
            angle -= 1;
        } else if t.kind == TokKind::Ident && angle == 0 {
            if t.text == "for" {
                saw_for = true;
            } else if t.text == "where" {
                break;
            } else if saw_for && after_for.is_none() {
                after_for = Some(t.text.clone());
            } else {
                last = Some(t.text.clone());
            }
        }
        j += 1;
    }
    // Re-find the `{` in case a where-clause broke the loop early.
    while j < toks.len() && !p(&toks[j], b'{') {
        j += 1;
    }
    if j >= toks.len() {
        return (None, at + 1);
    }
    let close = match_brace(toks, j);
    let type_name = after_for.or(last);
    match type_name {
        Some(type_name) => (Some(ImplItem { type_name, body: (j + 1, close) }), j + 1),
        None => (None, j + 1),
    }
}

/// Find call sites in the token range `[start, end)`.
fn find_calls(toks: &[Tok], start: usize, end: usize) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for i in start..end {
        let t = &toks[i];
        if t.kind != TokKind::Ident || NON_CALL_IDENTS.contains(&t.text.as_str()) {
            continue;
        }
        // Not a definition (`fn name(`), not a macro (`name!(`).
        if i > 0 && is(&toks[i - 1], "fn") {
            continue;
        }
        if toks.get(i + 1).is_some_and(|n| p(n, b'!')) {
            continue;
        }
        // Direct call `name(` or turbofish `name::<T>(`.
        let open = if toks.get(i + 1).is_some_and(|n| p(n, b'(')) {
            i + 1
        } else if toks.get(i + 1).is_some_and(|n| p(n, b':'))
            && toks.get(i + 2).is_some_and(|n| p(n, b':'))
            && toks.get(i + 3).is_some_and(|n| p(n, b'<'))
        {
            let past = skip_generics(toks, i + 3);
            if toks.get(past).is_some_and(|n| p(n, b'(')) {
                past
            } else {
                continue;
            }
        } else {
            continue;
        };
        let method = i > 0 && p(&toks[i - 1], b'.');
        let args = parse_args(toks, open, end);
        calls.push(CallSite { callee: t.text.clone(), line: t.line, tok: i, method, args });
    }
    calls
}

/// Classify the comma-separated arguments of the call whose `(` is at
/// `open`. Tracks `()[]{}` nesting; `<>` is ignored (see module docs).
fn parse_args(toks: &[Tok], open: usize, end: usize) -> Vec<Arg> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut cur: Vec<&Tok> = Vec::new();
    let flush = |cur: &mut Vec<&Tok>, args: &mut Vec<Arg>| {
        if cur.is_empty() {
            return;
        }
        let untracked = cur.iter().any(|t| {
            t.kind == TokKind::Ident
                && (t.text == "as_slice_untracked" || t.text == "as_mut_slice_untracked")
        });
        if untracked {
            args.push(Arg::Untracked);
        } else if cur.len() == 1 && cur[0].kind == TokKind::Ident {
            args.push(Arg::Ident(cur[0].text.clone()));
        } else if cur.len() == 2 && p(cur[0], b'&') && cur[1].kind == TokKind::Ident {
            // `&name` borrows are as trackable as `name`.
            args.push(Arg::Ident(cur[1].text.clone()));
        } else {
            args.push(Arg::Other);
        }
        cur.clear();
    };
    for t in toks.iter().take(end.min(toks.len())).skip(open) {
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => {
                depth += 1;
                if depth > 1 {
                    cur.push(t);
                }
            }
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    flush(&mut cur, &mut args);
                    break;
                }
                cur.push(t);
            }
            TokKind::Punct(b',') if depth == 1 => flush(&mut cur, &mut args),
            _ if depth >= 1 => cur.push(t),
            _ => {}
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn items(src: &str) -> Items {
        parse(&tokenize(src))
    }

    #[test]
    fn fns_params_and_bodies() {
        let it = items("fn free(a: u32, mut b: &[u8]) -> u32 { a }\nimpl M { fn meth(&self, x: f64) {} }");
        assert_eq!(it.fns.len(), 2);
        assert_eq!(it.fns[0].name, "free");
        assert_eq!(it.fns[0].params, ["a", "b"]);
        assert_eq!(it.fns[1].name, "meth");
        assert_eq!(it.fns[1].params, ["self", "x"]);
        assert_eq!(it.impls.len(), 1);
        assert_eq!(it.impls[0].type_name, "M");
    }

    #[test]
    fn generic_fns_and_return_types() {
        let it = items("fn g<T: Iterator<Item = u8>>(x: T) -> Vec<u8> { x.collect() }");
        assert_eq!(it.fns[0].params, ["x"]);
        assert!(it.fns[0].body.1 > it.fns[0].body.0);
    }

    #[test]
    fn trait_decls_have_no_body() {
        let it = items("trait T { fn decl(&self, n: usize) -> u64; }");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].body, (0, 0));
    }

    #[test]
    fn struct_fields_with_visibility() {
        let it = items("pub struct Counters { pub loads: u64, pub(crate) inner: u64, stores: u64 }");
        let names: Vec<&str> = it.structs[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["loads", "inner", "stores"]);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let it = items("struct U; struct T(u64, u64);");
        assert_eq!(it.structs.len(), 2);
        assert!(it.structs.iter().all(|s| s.fields.is_empty()));
    }

    #[test]
    fn trait_impl_self_type() {
        let it = items("impl Default for Counters { fn default() -> Self { Self::new() } }");
        assert_eq!(it.impls[0].type_name, "Counters");
        assert_eq!(it.fns[0].name, "default");
    }

    #[test]
    fn calls_and_args_are_classified() {
        let it = items(
            "fn f(v: &SimVec<u8>) { helper(keys, v.as_slice_untracked(), 1 + 2); x.meth(&buf); }",
        );
        let calls = &it.fns[0].calls;
        let helper = calls.iter().find(|c| c.callee == "helper").unwrap();
        assert_eq!(helper.args, [Arg::Ident("keys".into()), Arg::Untracked, Arg::Other]);
        assert!(!helper.method);
        let meth = calls.iter().find(|c| c.callee == "meth").unwrap();
        assert!(meth.method);
        assert_eq!(meth.args, [Arg::Ident("buf".into())]);
        // `as_slice_untracked` itself is also recorded as a (method) call.
        assert!(calls.iter().any(|c| c.callee == "as_slice_untracked"));
    }

    #[test]
    fn turbofish_calls_are_found() {
        let it = items("fn f(s: &str) { let _ = parse_num::<u32>(s); }");
        let c = it.fns[0].calls.iter().find(|c| c.callee == "parse_num").unwrap();
        assert_eq!(c.args, [Arg::Ident("s".into())]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let it = items("fn f() { println!(\"x\"); if (a) { } for i in (0..3) { } }");
        assert!(it.fns[0].calls.iter().all(|c| c.callee != "println" && c.callee != "if"));
    }

    #[test]
    fn nested_fns_are_discovered() {
        let it = items("fn outer() { fn inner(q: u8) -> u8 { q } inner(3); }");
        let names: Vec<&str> = it.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        assert!(it.fns[0].calls.iter().any(|c| c.callee == "inner"));
    }
}
