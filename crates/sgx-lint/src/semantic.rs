//! Semantic rules on the workspace call graph ([`crate::graph`]).
//!
//! Six rules, each answering a question the per-file token pass cannot:
//!
//! * **untracked-slice-taint** — does a slice born from
//!   `as_slice_untracked` *flow into another function* that indexes or
//!   iterates it? The token rule sees the escape hatch itself; this rule
//!   follows the value across the call edge, so a helper loop over
//!   untracked bytes cannot hide behind a clean-looking call site.
//! * **counter-conservation** — is every `Counters` / `CategoryCycles`
//!   field both charged (written somewhere in non-test code) and
//!   attributed (read outside the crate that defines it)? A counter
//!   failing either half silently skews the enclave-vs-native ratios
//!   every figure is built on, and a dead profiler bin would leak cycles
//!   out of the per-phase breakdown.
//! * **fault-tick-coverage** — does every cycle-charging function in the
//!   fault-tick *module set* (files defining `fn fault_tick` plus files
//!   opting in via `// sgx-lint: fault-tick-module`) reach `fault_tick`,
//!   directly or through in-set call chains, so the fault engine observes
//!   every charge path across the layered pipeline?
//! * **calibration-provenance** — in files carrying the
//!   `// sgx-lint: calibration-file` pragma, does every numeric constant
//!   line carry a `paper: §x.y` / `uarch: <source>` provenance comment?
//! * **charge-escape** — in the `// sgx-lint: charge-module` set, does
//!   every function that *mutates charge state* (a compound assignment to
//!   a cycle/clock accumulator or a counters-ledger field, detected by
//!   the [`crate::dataflow`] field-write pass through `&mut` reborrows)
//!   reach `commit`, the `Core::commit(Charge)` choke point? A charge
//!   that bypasses the choke point corrupts enclave-vs-native
//!   attribution without failing a single test — exactly the silent
//!   failure mode the hot-path optimization program must not introduce.
//! * **des-invariant** — in `// sgx-lint: des-module` files (the service
//!   DES), three determinism/conservation obligations: every `*Kind`
//!   event variant that is constructed has an explicit match arm (no
//!   wildcard-swallowed events); every `*Counters` field incremented is
//!   read by a `reconcile` conservation check; no ambient entropy
//!   sources (the DES draws randomness only from its seeded generator).
//!
//! All findings honor the same `// sgx-lint: allow(<rule>) <reason>`
//! markers as the token rules (applied by the caller via
//! [`Workspace::allowed`]).

use crate::dataflow;
use crate::engine::{FileClass, Finding};
use crate::graph::Workspace;
use crate::parse::Arg;
use crate::tokenizer::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

fn is(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

fn p(t: &Tok, c: u8) -> bool {
    t.kind == TokKind::Punct(c)
}

/// Tunables for the semantic pass. [`Config::default`] is what every
/// workspace lint uses; the robustness harness's `--weaken` knobs dial
/// individual defenses back to their pre-hardening behavior so the CI
/// gate can prove the RD score actually depends on them.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum call edges the taint rule follows from the tainted call
    /// site. `1` restores the original direct-callee-only behavior that
    /// wrapper indirection defeats. Wrapping *every* function of a chain
    /// in `d` forwarding layers multiplies each edge by `d + 1`, so the
    /// deepest corpus chain (3 edges) at wrap depth 2 needs 9; the
    /// default keeps one edge of headroom. The visited set bounds the
    /// walk regardless.
    pub taint_call_depth: usize,
    /// Follow `let a = b;` / `let a = &b;` aliases when computing tainted
    /// locals and consumed parameters. `false` restores the original
    /// behavior that `let`-chain lengthening defeats.
    pub taint_aliases: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config { taint_call_depth: 10, taint_aliases: true }
    }
}

/// Run every semantic rule under the default [`Config`]. Returns raw
/// `(file index, finding)` pairs — the caller applies allow-marker
/// suppression.
pub fn run(ws: &Workspace) -> Vec<(usize, Finding)> {
    run_cfg(ws, &Config::default())
}

/// [`run`] with explicit tunables.
pub fn run_cfg(ws: &Workspace, cfg: &Config) -> Vec<(usize, Finding)> {
    let mut out = Vec::new();
    untracked_slice_taint(ws, cfg, &mut out);
    counter_conservation(ws, cfg, &mut out);
    fault_tick_coverage(ws, &mut out);
    calibration_provenance(ws, &mut out);
    charge_escape(ws, &mut out);
    des_invariant(ws, &mut out);
    out
}

fn finding(file: &str, line: u32, rule: &str, message: String) -> Finding {
    Finding { path: file.to_string(), line, rule: rule.to_string(), message }
}

// ---------------------------------------------------------------- taint --

/// Slice-consuming accessors: a tainted parameter reaching one of these
/// (or `param[...]` indexing, or a `for … in param` loop) is a hot-loop
/// read the cost model never sees.
pub(crate) const SLICE_CONSUMERS: [&str; 14] = [
    "iter",
    "into_iter",
    "iter_mut",
    "chunks",
    "chunks_exact",
    "windows",
    "get",
    "first",
    "last",
    "split_at",
    "split_first",
    "split_last",
    "copy_from_slice",
    "sort_unstable",
];

/// `let [mut] a = [&[mut]] b;` bindings inside `body`, as `(a, b)`
/// pairs. These are the pure renamings that `let`-chain lengthening
/// introduces; initializers with any other shape are not aliases.
fn let_aliases(toks: &[Tok], body: (usize, usize)) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = body.0;
    while i < body.1 {
        if !is(&toks[i], "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| is(t, "mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Binder directly followed by `=` (alias chains never carry a
        // type annotation), RHS exactly `[&[mut]] ident ;`.
        if toks.get(j + 1).is_some_and(|t| p(t, b'='))
            && !toks.get(j + 2).is_some_and(|t| p(t, b'='))
        {
            let mut k = j + 2;
            while toks.get(k).is_some_and(|t| p(t, b'&') || is(t, "mut")) {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                && toks.get(k + 1).is_some_and(|t| p(t, b';'))
            {
                out.push((name_tok.text.clone(), toks[k].text.clone()));
            }
        }
        i = j + 1;
    }
    out
}

/// Grow `names` with every `let`-alias of a name already in the set,
/// to a fixpoint.
fn close_over_aliases(names: &mut BTreeSet<String>, toks: &[Tok], body: (usize, usize)) {
    let aliases = let_aliases(toks, body);
    loop {
        let mut grew = false;
        for (name, rhs) in &aliases {
            if names.contains(rhs) && names.insert(name.clone()) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
}

/// Local `let` bindings whose initializer contains `as_slice_untracked`,
/// plus (when `cfg.taint_aliases`) their transitive `let`-aliases.
fn tainted_locals(toks: &[Tok], body: (usize, usize), cfg: &Config) -> BTreeSet<String> {
    let mut tainted = BTreeSet::new();
    let mut i = body.0;
    while i < body.1 {
        if !is(&toks[i], "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| is(t, "mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Scan the statement (bounded) for the escape hatch.
        let mut escaped = false;
        for t in toks.iter().take((j + 64).min(body.1)).skip(j + 1) {
            if p(t, b';') {
                break;
            }
            if is(t, "as_slice_untracked") || is(t, "as_mut_slice_untracked") {
                escaped = true;
                break;
            }
        }
        if escaped {
            tainted.insert(name_tok.text.clone());
        }
        i = j + 1;
    }
    if cfg.taint_aliases {
        close_over_aliases(&mut tainted, toks, body);
    }
    tainted
}

/// How (if at all) does the function at `(cf, cn)` consume its parameter
/// `pname`: directly (indexing, a slice-consumer method, a `for` loop) —
/// on the parameter itself or a `let`-alias of it — or by passing it into
/// another function that does, up to `depth` further call edges.
/// `depth == 0` checks the body only (the original, pre-robustness
/// behavior that wrapper indirection defeats).
fn param_consumed(
    ws: &Workspace,
    cf: usize,
    cn: usize,
    pname: &str,
    depth: usize,
    cfg: &Config,
    visited: &mut BTreeSet<(usize, usize, String)>,
) -> Option<String> {
    if !visited.insert((cf, cn, pname.to_string())) {
        return None;
    }
    let f = &ws.files[cf];
    let item = &f.items.fns[cn];
    let toks = &f.lexed.tokens;
    // Names the parameter is known by inside this body.
    let mut names: BTreeSet<String> = BTreeSet::new();
    names.insert(pname.to_string());
    if cfg.taint_aliases {
        close_over_aliases(&mut names, toks, item.body);
    }
    let (s, e) = item.body;
    for i in s..e {
        if f.mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident || !names.contains(&t.text) {
            continue;
        }
        if toks.get(i + 1).is_some_and(|n| p(n, b'[')) {
            return Some("indexed".to_string());
        }
        if toks.get(i + 1).is_some_and(|n| p(n, b'.'))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokKind::Ident && SLICE_CONSUMERS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| p(n, b'('))
        {
            return Some("iterated".to_string());
        }
        if i > 0 && is(&toks[i - 1], "in") {
            return Some("iterated in a for-loop".to_string());
        }
    }
    if depth == 0 {
        return None;
    }
    // Indirect: the parameter (or an alias) handed onward.
    for call in &item.calls {
        if f.mask.get(call.tok).copied().unwrap_or(false) {
            continue;
        }
        for (pos, arg) in call.args.iter().enumerate() {
            let Arg::Ident(n) = arg else { continue };
            if !names.contains(n) {
                continue;
            }
            for (nf, nn) in ws.resolve(cf, &call.callee) {
                let next = &ws.files[nf].items.fns[nn];
                let shift = usize::from(
                    call.method && next.params.first().is_some_and(|p| p == "self"),
                );
                let Some(next_p) = next.params.get(pos + shift) else { continue };
                if let Some(how) = param_consumed(ws, nf, nn, next_p, depth - 1, cfg, visited) {
                    return Some(format!("{how} (via `{}`)", call.callee));
                }
            }
        }
    }
    None
}

/// Rule: untracked-slice-taint. Call sites live in operator-crate library
/// code (the same scope as the token-level untracked-access rule); the
/// consuming callee may live anywhere.
fn untracked_slice_taint(ws: &Workspace, cfg: &Config, out: &mut Vec<(usize, Finding)>) {
    for (fi, f) in ws.files.iter().enumerate() {
        if f.class != FileClass::OperatorLib {
            continue;
        }
        let toks = &f.lexed.tokens;
        for item in &f.items.fns {
            let tainted = tainted_locals(toks, item.body, cfg);
            for call in &item.calls {
                if f.mask.get(call.tok).copied().unwrap_or(false) {
                    continue;
                }
                for (pos, arg) in call.args.iter().enumerate() {
                    let arg_tainted = match arg {
                        Arg::Untracked => true,
                        Arg::Ident(n) => tainted.contains(n),
                        Arg::Other => false,
                    };
                    if !arg_tainted {
                        continue;
                    }
                    let mut flagged = false;
                    for (cf, cn) in ws.resolve(fi, &call.callee) {
                        let callee = &ws.files[cf].items.fns[cn];
                        // Method-call syntax: the receiver consumes the
                        // leading `self` parameter.
                        let shift = usize::from(
                            call.method && callee.params.first().is_some_and(|p| p == "self"),
                        );
                        let Some(pname) = callee.params.get(pos + shift) else { continue };
                        let mut visited = BTreeSet::new();
                        let how = param_consumed(
                            ws,
                            cf,
                            cn,
                            pname,
                            cfg.taint_call_depth.saturating_sub(1),
                            cfg,
                            &mut visited,
                        );
                        if let Some(how) = how {
                            out.push((
                                fi,
                                finding(
                                    &f.label,
                                    call.line,
                                    "untracked-slice-taint",
                                    format!(
                                        "untracked slice flows into `{}` where parameter `{pname}` is {how} — those accesses bypass the SimVec event stream; pass the SimVec and use charged accessors, or add a reasoned allow-marker",
                                        call.callee
                                    ),
                                ),
                            ));
                            flagged = true;
                            break;
                        }
                    }
                    if flagged {
                        break;
                    }
                }
            }
        }
    }
}

// ------------------------------------------------------- conservation --

/// Field-access classification at a `.field` site.
#[derive(PartialEq)]
enum Access {
    Write,
    Read,
}

/// Classify the access at token `i` (an Ident preceded by `.`): plain
/// assignment and compound assignment are writes; everything else
/// (including `==` comparisons) reads.
fn access_kind(toks: &[Tok], i: usize) -> Access {
    let Some(n1) = toks.get(i + 1) else { return Access::Read };
    if p(n1, b'=') {
        return if toks.get(i + 2).is_some_and(|n| p(n, b'=')) {
            Access::Read // `==`
        } else {
            Access::Write
        };
    }
    if matches!(n1.kind, TokKind::Punct(b'+') | TokKind::Punct(b'-') | TokKind::Punct(b'*') | TokKind::Punct(b'/'))
        && toks.get(i + 2).is_some_and(|n| p(n, b'='))
    {
        return Access::Write;
    }
    Access::Read
}

/// Struct names the conservation rule applies to: the event counters and
/// the profiler's per-category cycle bins. Both are ledgers whose fields
/// exist only to be charged and then surfaced in a figure or profile.
const CONSERVED_STRUCTS: [&str; 2] = ["Counters", "CategoryCycles"];

/// Rule: counter-conservation. Every field of a non-test conserved struct
/// (`Counters`, `CategoryCycles`) must be written in non-test code
/// (charged) and read outside the defining crate (attributed). When the
/// scanned set spans only one crate — a subtree lint or a single corpus
/// file — the attribution check falls back to "read outside the struct's
/// own definition and `impl` blocks", so partial scans stay useful
/// without false-flagging every field. Impl blocks written against a
/// `type` alias of the struct resolve to the underlying name (via
/// [`dataflow::type_aliases`]) when `cfg.taint_aliases` is on, so an
/// `impl CountersAlias { fn total(…) }` cannot launder bookkeeping reads
/// into attribution.
fn counter_conservation(ws: &Workspace, cfg: &Config, out: &mut Vec<(usize, Finding)>) {
    let crates: BTreeSet<&str> =
        ws.files.iter().map(|f| f.crate_name.as_str()).collect();
    let multi_crate = crates.len() > 1;
    // Workspace-merged `type` alias map, for resolving own-impl blocks
    // declared against `type X = Counters;` style aliases. Merged across
    // files because in the single-crate fallback names resolve
    // workspace-wide (the same policy as call edges) — an alias defined
    // in one file still claims an `impl` written in another.
    let aliases: BTreeMap<String, String> = if cfg.taint_aliases {
        let mut merged = BTreeMap::new();
        for f in &ws.files {
            merged.extend(dataflow::type_aliases(&f.lexed.tokens));
        }
        merged
    } else {
        BTreeMap::new()
    };
    for (fi, f) in ws.files.iter().enumerate() {
        if f.class == FileClass::Test {
            continue;
        }
        for st in f
            .items
            .structs
            .iter()
            .filter(|s| CONSERVED_STRUCTS.contains(&s.name.as_str()))
        {
            for field in &st.fields {
                let mut written = false;
                let mut attributed = false;
                for (oi, other) in ws.files.iter().enumerate() {
                    let toks = &other.lexed.tokens;
                    // Token ranges that don't count as attribution: the
                    // struct definition itself and its own `impl` blocks
                    // (a counter summing itself into `accesses()` is
                    // bookkeeping, not a figure). Only meaningful in the
                    // single-crate fallback; impls are matched in every
                    // scanned file, so splitting the impl away from the
                    // struct — or hiding it behind a `type` alias — does
                    // not turn bookkeeping into attribution.
                    let own_ranges: Vec<(usize, usize)> = if multi_crate {
                        Vec::new()
                    } else {
                        let impls = other
                            .items
                            .impls
                            .iter()
                            .filter(|im| {
                                dataflow::resolve_alias(&aliases, &im.type_name) == st.name
                            })
                            .map(|im| im.body);
                        if oi == fi {
                            std::iter::once(st.body).chain(impls).collect()
                        } else {
                            impls.collect()
                        }
                    };
                    for (ti, t) in toks.iter().enumerate() {
                        if !is(t, &field.name) || ti == 0 || !p(&toks[ti - 1], b'.') {
                            continue;
                        }
                        let in_test =
                            other.mask.get(ti).copied().unwrap_or(false) || other.class == FileClass::Test;
                        match access_kind(toks, ti) {
                            Access::Write => {
                                // Charges must come from non-test code.
                                if !in_test {
                                    written = true;
                                }
                            }
                            Access::Read => {
                                let in_own =
                                    own_ranges.iter().any(|&(s, e)| ti >= s && ti < e);
                                // Attribution must come from outside the
                                // defining crate (multi-crate scan) or at
                                // least from outside the struct's own
                                // impl (single-crate fallback). Test reads
                                // count — integration tests asserting
                                // conservation laws ARE attribution.
                                let external = if multi_crate {
                                    other.crate_name != f.crate_name
                                } else {
                                    !in_own
                                };
                                if external {
                                    attributed = true;
                                }
                            }
                        }
                    }
                }
                if !written {
                    out.push((
                        fi,
                        finding(
                            &f.label,
                            field.line,
                            "counter-conservation",
                            format!(
                                "counter field `{}` is never written in non-test code — a dead counter misattributes whatever cost it was meant to carry",
                                field.name
                            ),
                        ),
                    ));
                } else if !attributed {
                    out.push((
                        fi,
                        finding(
                            &f.label,
                            field.line,
                            "counter-conservation",
                            format!(
                                "counter field `{}` is charged but never read outside `{}` — unattributed charges are invisible to every figure",
                                field.name,
                                if f.crate_name.is_empty() { "its crate" } else { &f.crate_name }
                            ),
                        ),
                    ));
                }
            }
        }
    }
}

// ------------------------------------------------------ fault coverage --

/// Rule: fault-tick-coverage, over a configurable *module set*: every
/// non-test file that defines `fn fault_tick` plus every file carrying
/// the `// sgx-lint: fault-tick-module` pragma (the layers of the split
/// machine pipeline opt in this way). Within the set, every function that
/// charges cycles (`cycles += …`) must reach `fault_tick` — directly or
/// transitively through calls resolved inside the set — except
/// `fault_tick` itself and its transitive callees (the fault engine's own
/// charge paths must not recurse into the tick). A pragma'd file from
/// which `fault_tick` is unreachable (e.g. no set file defines it at all)
/// flags every charge path: a charging layer the fault engine never sees
/// is exactly the bug this rule exists for.
fn fault_tick_coverage(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    let set: Vec<usize> = ws
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            f.class != FileClass::Test
                && (f.fault_tick_module || f.items.fns.iter().any(|i| i.name == "fault_tick"))
        })
        .map(|(fi, _)| fi)
        .collect();
    if set.is_empty() {
        return;
    }
    // Function names defined anywhere in the set (call edges are resolved
    // by name, the workspace-wide policy — see `crate::graph`).
    let defined: BTreeSet<&str> = set
        .iter()
        .flat_map(|&fi| ws.files[fi].items.fns.iter().map(|i| i.name.as_str()))
        .collect();
    // Downward closure: `fault_tick` and everything it transitively calls
    // within the set.
    let mut exempt: BTreeSet<String> = BTreeSet::new();
    exempt.insert("fault_tick".to_string());
    let mut changed = true;
    while changed {
        changed = false;
        for &fi in &set {
            for item in &ws.files[fi].items.fns {
                if !exempt.contains(&item.name) {
                    continue;
                }
                for call in &item.calls {
                    if defined.contains(call.callee.as_str()) && !exempt.contains(&call.callee) {
                        exempt.insert(call.callee.clone());
                        changed = true;
                    }
                }
            }
        }
    }
    // Upward closure: names that reach `fault_tick` through unmasked
    // in-set call chains. Empty when no set file defines it.
    let mut reaches: BTreeSet<String> = BTreeSet::new();
    if set.iter().any(|&fi| ws.files[fi].items.fns.iter().any(|i| i.name == "fault_tick")) {
        reaches.insert("fault_tick".to_string());
        changed = true;
        while changed {
            changed = false;
            for &fi in &set {
                let f = &ws.files[fi];
                for item in &f.items.fns {
                    if reaches.contains(&item.name) {
                        continue;
                    }
                    let hits = item.calls.iter().any(|c| {
                        reaches.contains(&c.callee)
                            && !f.mask.get(c.tok).copied().unwrap_or(false)
                    });
                    if hits {
                        reaches.insert(item.name.clone());
                        changed = true;
                    }
                }
            }
        }
    }
    for &fi in &set {
        let f = &ws.files[fi];
        let toks = &f.lexed.tokens;
        for item in &f.items.fns {
            if exempt.contains(&item.name) || reaches.contains(&item.name) {
                continue;
            }
            // First unmasked charge site in the body.
            let charge_line = (item.body.0..item.body.1).find_map(|i| {
                let masked = f.mask.get(i).copied().unwrap_or(false);
                (!masked
                    && is(&toks[i], "cycles")
                    && toks.get(i + 1).is_some_and(|n| p(n, b'+'))
                    && toks.get(i + 2).is_some_and(|n| p(n, b'=')))
                .then(|| toks[i].line)
            });
            let Some(line) = charge_line else { continue };
            out.push((
                fi,
                finding(
                    &f.label,
                    line,
                    "fault-tick-coverage",
                    format!(
                        "`{}` charges cycles but never reaches `fault_tick` through the fault-tick module set — injected faults skip this charge path, so fault experiments under-count it",
                        item.name
                    ),
                ),
            ));
        }
    }
}

// ---------------------------------------------------------- provenance --

/// Rule: calibration-provenance. In pragma-opted files, every non-test
/// line with a numeric literal needs a `paper:` or `uarch:` provenance
/// comment on the same line or the line above. One finding per line.
fn calibration_provenance(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    for (fi, f) in ws.files.iter().enumerate() {
        if !f.calibration || f.class == FileClass::Test {
            continue;
        }
        let tagged: BTreeSet<u32> = f
            .lexed
            .comments
            .iter()
            .filter(|c| c.text.contains("paper:") || c.text.contains("uarch:"))
            .map(|c| c.line)
            .collect();
        let mut flagged: BTreeSet<u32> = BTreeSet::new();
        for (ti, t) in f.lexed.tokens.iter().enumerate() {
            if t.kind != TokKind::Num || f.mask.get(ti).copied().unwrap_or(false) {
                continue;
            }
            let l = t.line;
            if tagged.contains(&l) || (l > 1 && tagged.contains(&(l - 1))) || !flagged.insert(l) {
                continue;
            }
            out.push((
                fi,
                finding(
                    &f.label,
                    l,
                    "calibration-provenance",
                    "numeric constant in a calibration file without a `paper: §x.y` / `uarch: <source>` provenance comment — calibration must stay auditable against the paper".to_string(),
                ),
            ));
        }
    }
}

// ------------------------------------------------------- charge escape --

/// Does this assignment-target chain (receiver-alias-resolved) mutate
/// charge state: a cycle/clock accumulator, the wall clock, or a field of
/// a counters ledger? Byte counters (`*_bytes`) are deliberately out of
/// scope — they are derived views, not the charged quantity itself.
fn charge_ish(chain: &[String]) -> bool {
    chain.iter().any(|s| {
        let l = s.to_ascii_lowercase();
        l.contains("cycle") || l.contains("clock") || s == "wall" || s == "counters"
    })
}

/// Rule: charge-escape, over the `// sgx-lint: charge-module` set (the
/// layered machine pipeline opts in file by file, like fault-tick). Every
/// non-test function in the set that performs a *compound* assignment to
/// charge state (plain `=` is a reset/install, not a charge) must reach
/// `commit` — the `Core::commit(Charge)` choke point — directly or
/// through unmasked in-set call chains. `commit` itself and its in-set
/// transitive callees are exempt (they *are* the choke point's
/// implementation). A pragma'd set in which no file defines `commit`
/// flags every charge site: a charging module the choke point never sees
/// is exactly the escape this rule exists for. Charge sites are detected
/// by the [`dataflow`] field-write pass, resolved through `let r = &mut
/// self.…;` reborrows so laundering a receiver does not hide the write.
fn charge_escape(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    let set: Vec<usize> = ws
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.class != FileClass::Test && f.charge_module)
        .map(|(fi, _)| fi)
        .collect();
    if set.is_empty() {
        return;
    }
    let defined: BTreeSet<&str> = set
        .iter()
        .flat_map(|&fi| ws.files[fi].items.fns.iter().map(|i| i.name.as_str()))
        .collect();
    // Downward closure: `commit` and everything it transitively calls
    // within the set — the choke point's own charge paths.
    let mut exempt: BTreeSet<String> = BTreeSet::new();
    exempt.insert("commit".to_string());
    let mut changed = true;
    while changed {
        changed = false;
        for &fi in &set {
            for item in &ws.files[fi].items.fns {
                if !exempt.contains(&item.name) {
                    continue;
                }
                for call in &item.calls {
                    if defined.contains(call.callee.as_str()) && !exempt.contains(&call.callee) {
                        exempt.insert(call.callee.clone());
                        changed = true;
                    }
                }
            }
        }
    }
    // Upward closure: names that reach `commit` through unmasked in-set
    // call chains. Empty when no set file defines it.
    let mut reaches: BTreeSet<String> = BTreeSet::new();
    if set.iter().any(|&fi| ws.files[fi].items.fns.iter().any(|i| i.name == "commit")) {
        reaches.insert("commit".to_string());
        changed = true;
        while changed {
            changed = false;
            for &fi in &set {
                let f = &ws.files[fi];
                for item in &f.items.fns {
                    if reaches.contains(&item.name) {
                        continue;
                    }
                    let hits = item.calls.iter().any(|c| {
                        reaches.contains(&c.callee)
                            && !f.mask.get(c.tok).copied().unwrap_or(false)
                    });
                    if hits {
                        reaches.insert(item.name.clone());
                        changed = true;
                    }
                }
            }
        }
    }
    for &fi in &set {
        let f = &ws.files[fi];
        let toks = &f.lexed.tokens;
        for item in &f.items.fns {
            if exempt.contains(&item.name) || reaches.contains(&item.name) {
                continue;
            }
            let aliases = dataflow::receiver_aliases(toks, item.body);
            // First unmasked compound charge site in the body.
            let site = dataflow::field_writes(toks, item.body).into_iter().find(|w| {
                w.compound
                    && !f.mask.get(w.tok).copied().unwrap_or(false)
                    && charge_ish(&dataflow::resolve_receiver(&w.chain, &aliases))
            });
            let Some(w) = site else { continue };
            out.push((
                fi,
                finding(
                    &f.label,
                    w.line,
                    "charge-escape",
                    format!(
                        "`{}` mutates charge state (`{}`) but never reaches `commit` through the charge-module set — a charge bypassing the `Core::commit` choke point skews enclave-vs-native attribution invisibly; route it through `commit` or add a reasoned allow-marker",
                        item.name,
                        w.chain.join(".")
                    ),
                ),
            ));
        }
    }
}

// -------------------------------------------------------- des invariant --

/// Ambient entropy idents a deterministic DES must never touch: every
/// random decision has to come from the seeded generator, or replays (and
/// `--jobs` shards) diverge.
const ENTROPY_SOURCES: [&str; 5] = ["random", "gen_range", "gen_bool", "getrandom", "OsRng"];

/// Rule: des-invariant, over `// sgx-lint: des-module` files (the
/// discrete-event service core). Three obligations:
///
/// 1. **Event totality** — every variant of a `*Kind` enum that is
///    constructed (enqueued) in the set has an explicit match arm
///    somewhere in the set. A wildcard arm does not count: it is exactly
///    how an unhandled event silently drops work.
/// 2. **Counter ↔ reconcile conservation** — every `*Counters` field a
///    set file increments (compound field write, receiver-qualified so
///    plain locals don't match) is read by some non-test `reconcile`
///    function in the scanned workspace. Vacuously satisfied when the
///    scan contains no `*Counters` struct or no `reconcile` function
///    (partial scans stay useful).
/// 3. **Seeded randomness only** — no ambient entropy idents.
fn des_invariant(ws: &Workspace, out: &mut Vec<(usize, Finding)>) {
    let set: Vec<usize> = ws
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.class != FileClass::Test && f.des_module)
        .map(|(fi, _)| fi)
        .collect();
    if set.is_empty() {
        return;
    }

    // (1) Event totality over `*Kind` enums defined in the set.
    let kind_enums: BTreeSet<String> = set
        .iter()
        .flat_map(|&fi| dataflow::parse_enums(&ws.files[fi].lexed.tokens))
        .filter(|e| e.name.ends_with("Kind"))
        .map(|e| e.name)
        .collect();
    let mut constructed: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    let mut handled: BTreeSet<(String, String)> = BTreeSet::new();
    for &fi in &set {
        let f = &ws.files[fi];
        for u in dataflow::variant_uses(&f.lexed.tokens) {
            if !kind_enums.contains(&u.enum_name) {
                continue;
            }
            let key = (u.enum_name, u.variant);
            match u.usage {
                dataflow::PathUse::Construct => {
                    if !f.mask.get(u.tok).copied().unwrap_or(false) {
                        constructed.entry(key).or_insert((fi, u.line));
                    }
                }
                dataflow::PathUse::MatchArm => {
                    handled.insert(key);
                }
            }
        }
    }
    for ((enum_name, variant), (fi, line)) in &constructed {
        if handled.contains(&(enum_name.clone(), variant.clone())) {
            continue;
        }
        out.push((
            *fi,
            finding(
                &ws.files[*fi].label,
                *line,
                "des-invariant",
                format!(
                    "event `{enum_name}::{variant}` is enqueued but has no explicit event-loop arm — a wildcard-swallowed event drops work the counters can never reconcile"
                ),
            ),
        ));
    }

    // (2) Counter ↔ reconcile conservation.
    let counter_fields: BTreeSet<String> = ws
        .files
        .iter()
        .flat_map(|f| f.items.structs.iter())
        .filter(|st| st.name.ends_with("Counters"))
        .flat_map(|st| st.fields.iter().map(|fl| fl.name.clone()))
        .collect();
    let mut reconciled: BTreeSet<String> = BTreeSet::new();
    let mut have_reconcile = false;
    for f in &ws.files {
        if f.class == FileClass::Test {
            continue;
        }
        for item in &f.items.fns {
            if !item.name.contains("reconcile")
                || f.mask.get(item.kw_tok).copied().unwrap_or(false)
            {
                continue;
            }
            have_reconcile = true;
            for t in &f.lexed.tokens[item.body.0..item.body.1.min(f.lexed.tokens.len())] {
                if t.kind == TokKind::Ident {
                    reconciled.insert(t.text.clone());
                }
            }
        }
    }
    if !counter_fields.is_empty() && have_reconcile {
        for &fi in &set {
            let f = &ws.files[fi];
            let toks = &f.lexed.tokens;
            for item in &f.items.fns {
                for w in dataflow::field_writes(toks, item.body) {
                    // Field writes only (`chain.len() >= 2`): a plain
                    // local that happens to share a counter's name is not
                    // a ledger increment.
                    if !w.compound
                        || w.chain.len() < 2
                        || f.mask.get(w.tok).copied().unwrap_or(false)
                    {
                        continue;
                    }
                    let Some(last) = w.chain.last() else { continue };
                    if counter_fields.contains(last) && !reconciled.contains(last) {
                        out.push((
                            fi,
                            finding(
                                &f.label,
                                w.line,
                                "des-invariant",
                                format!(
                                    "counter field `{last}` is incremented here but read by no `reconcile` conservation check — an unreconciled counter can leak or double-count events undetected"
                                ),
                            ),
                        ));
                    }
                }
            }
        }
    }

    // (3) Seeded randomness only.
    for &fi in &set {
        let f = &ws.files[fi];
        for (ti, t) in f.lexed.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident
                || f.mask.get(ti).copied().unwrap_or(false)
                || !ENTROPY_SOURCES.contains(&t.text.as_str())
            {
                continue;
            }
            out.push((
                fi,
                finding(
                    &f.label,
                    t.line,
                    "des-invariant",
                    format!(
                        "ambient entropy source `{}` in a des-module file — the DES must draw every random decision from its seeded generator or replays and `--jobs` shards diverge",
                        t.text
                    ),
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws(sources: &[(&str, FileClass, &str)]) -> Workspace {
        Workspace::build(
            sources
                .iter()
                .map(|(p, c, s)| (PathBuf::from(p), *c, s.to_string()))
                .collect(),
        )
    }

    fn rules(found: &[(usize, Finding)]) -> Vec<&str> {
        found.iter().map(|(_, f)| f.rule.as_str()).collect()
    }

    #[test]
    fn taint_follows_slices_across_files() {
        let w = ws(&[
            (
                "crates/sgx-joins/src/a.rs",
                FileClass::OperatorLib,
                "pub fn build(v: &SimVec<u64>) { let keys = v.as_slice_untracked(); helper(keys); }",
            ),
            (
                "crates/sgx-scans/src/b.rs",
                FileClass::OperatorLib,
                "pub fn helper(keys: &[u64]) -> u64 { keys[0] }",
            ),
        ]);
        let found = run(&w);
        assert!(rules(&found).contains(&"untracked-slice-taint"), "{found:?}");
        assert_eq!(found.iter().filter(|(_, f)| f.rule == "untracked-slice-taint").count(), 1);
    }

    #[test]
    fn taint_direct_argument_and_for_loop() {
        let w = ws(&[(
            "crates/sgx-joins/src/a.rs",
            FileClass::OperatorLib,
            "pub fn f(v: &SimVec<u64>) { sum(v.as_slice_untracked()) }\npub fn sum(xs: &[u64]) -> u64 { let mut s = 0; for x in xs { s += x; } s }",
        )]);
        assert_eq!(rules(&run(&w)), ["untracked-slice-taint"]);
    }

    #[test]
    fn taint_resolution_shadows_foreign_same_named_fns() {
        // The calling file's own `helper` only takes the length; the
        // same-named indexing `helper` in another crate must not be
        // followed — module-local resolution shadows it.
        let w = ws(&[
            (
                "crates/sgx-joins/src/a.rs",
                FileClass::OperatorLib,
                "pub fn build(v: &SimVec<u64>) { let keys = v.as_slice_untracked(); helper(keys); }\n\
                 fn helper(keys: &[u64]) -> usize { keys.len() }",
            ),
            (
                "crates/sgx-scans/src/b.rs",
                FileClass::OperatorLib,
                "pub fn helper(keys: &[u64]) -> u64 { keys[0] }",
            ),
        ]);
        let found = run(&w);
        assert!(
            !rules(&found).contains(&"untracked-slice-taint"),
            "foreign same-named fn wrongly attributed: {found:?}"
        );
    }

    #[test]
    fn taint_survives_wrapper_indirection() {
        // build → helper_w2 → helper_w1 → helper (the consumer): three
        // call edges from the tainted call site.
        let src = "pub fn build(v: &SimVec<u64>) { let keys = v.as_slice_untracked(); helper_w2(keys); }\n\
                   fn helper_w2(keys: &[u64]) -> u64 { helper_w1(keys) }\n\
                   fn helper_w1(keys: &[u64]) -> u64 { helper(keys) }\n\
                   fn helper(keys: &[u64]) -> u64 { keys[0] }";
        let w = ws(&[("crates/sgx-joins/src/a.rs", FileClass::OperatorLib, src)]);
        let found = run(&w);
        assert_eq!(rules(&found), ["untracked-slice-taint"], "{found:?}");
        assert!(found[0].1.message.contains("via"), "{}", found[0].1.message);
        // The weaken knob restores the pre-hardening blind spot.
        let weak = Config { taint_call_depth: 1, ..Config::default() };
        assert!(run_cfg(&w, &weak).is_empty());
    }

    #[test]
    fn taint_survives_let_chain_aliases() {
        // Tainted local laundered through a `let` chain at the call site,
        // and the parameter laundered through another chain in the callee.
        let src = "pub fn build(v: &SimVec<u64>) { let k1 = v.as_slice_untracked(); let k2 = k1; consume(k2); }\n\
                   fn consume(xs: &[u64]) -> u64 { let ys = xs; ys[0] }";
        let w = ws(&[("crates/sgx-joins/src/a.rs", FileClass::OperatorLib, src)]);
        assert_eq!(rules(&run(&w)), ["untracked-slice-taint"]);
        let weak = Config { taint_aliases: false, ..Config::default() };
        assert!(run_cfg(&w, &weak).is_empty());
    }

    #[test]
    fn taint_indirection_tolerates_recursion() {
        // Mutually recursive pass-through must terminate and stay silent.
        let src = "pub fn build(v: &SimVec<u64>) { let k = v.as_slice_untracked(); ping(k); }\n\
                   fn ping(xs: &[u64]) { pong(xs); }\n\
                   fn pong(xs: &[u64]) { ping(xs); }";
        let w = ws(&[("crates/sgx-joins/src/a.rs", FileClass::OperatorLib, src)]);
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn taint_silent_when_callee_does_not_consume() {
        let w = ws(&[(
            "crates/sgx-joins/src/a.rs",
            FileClass::OperatorLib,
            "pub fn f(v: &SimVec<u64>) { let s = v.as_slice_untracked(); note(s); }\npub fn note(xs: &[u64]) -> usize { xs.len() }",
        )]);
        assert!(rules(&run(&w)).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn taint_only_fires_from_operator_code() {
        let w = ws(&[(
            "crates/sgx-sim/src/a.rs",
            FileClass::Lib,
            "pub fn f(v: &SimVec<u64>) { let s = v.as_slice_untracked(); use_it(s); }\npub fn use_it(xs: &[u64]) -> u64 { xs[0] }",
        )]);
        assert!(rules(&run(&w)).is_empty());
    }

    #[test]
    fn conservation_flags_dead_and_unattributed() {
        let w = ws(&[
            (
                "crates/sgx-sim/src/counters.rs",
                FileClass::Lib,
                "pub struct Counters { pub loads: u64, pub dead: u64, pub ghost: u64 }",
            ),
            (
                "crates/sgx-sim/src/machine.rs",
                FileClass::Lib,
                "fn charge(c: &mut Counters) { c.loads += 1; c.ghost += 1; }",
            ),
            (
                "crates/sgx-bench-core/src/fig.rs",
                FileClass::Lib,
                "fn surface(c: &Counters) -> u64 { c.loads }",
            ),
        ]);
        let found = run(&w);
        let msgs: Vec<&str> = found.iter().map(|(_, f)| f.message.as_str()).collect();
        assert_eq!(found.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`dead`") && m.contains("never written")));
        assert!(msgs.iter().any(|m| m.contains("`ghost`") && m.contains("never read")));
    }

    #[test]
    fn conservation_covers_profiler_category_bins() {
        // The rule applies to `CategoryCycles` exactly as to `Counters`:
        // a bin nobody charges is dead, a charged bin nobody surfaces is
        // unattributed. Reads inside `impl CategoryCycles` (the struct's
        // own `total()`) do not attribute.
        let bad = ws(&[
            (
                "crates/sgx-sim/src/profile.rs",
                FileClass::Lib,
                "pub struct CategoryCycles { pub mee: f64, pub dead: f64, pub ghost: f64 }\nimpl CategoryCycles { fn total(&self) -> f64 { self.mee + self.dead + self.ghost } }\nfn charge(c: &mut CategoryCycles) { c.mee += 1.0; c.ghost += 1.0; }",
            ),
            (
                "crates/sgx-bench-core/src/report.rs",
                FileClass::Lib,
                "fn surface(c: &CategoryCycles) -> f64 { c.mee }",
            ),
        ]);
        let found = run(&bad);
        let msgs: Vec<&str> = found.iter().map(|(_, f)| f.message.as_str()).collect();
        assert_eq!(found.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`dead`") && m.contains("never written")));
        assert!(msgs.iter().any(|m| m.contains("`ghost`") && m.contains("never read")));
        let good = ws(&[
            (
                "crates/sgx-sim/src/profile.rs",
                FileClass::Lib,
                "pub struct CategoryCycles { pub mee: f64 }\nfn charge(c: &mut CategoryCycles) { c.mee += 1.0; }",
            ),
            (
                "crates/sgx-bench-core/src/report.rs",
                FileClass::Lib,
                "fn surface(c: &CategoryCycles) -> f64 { c.mee }",
            ),
        ]);
        assert!(run(&good).is_empty(), "{:?}", run(&good));
    }

    #[test]
    fn conservation_counts_test_reads_as_attribution() {
        let w = ws(&[
            (
                "crates/sgx-sim/src/counters.rs",
                FileClass::Lib,
                "pub struct Counters { pub loads: u64 }\nfn charge(c: &mut Counters) { c.loads += 1; }",
            ),
            (
                "tests/integration_counters.rs",
                FileClass::Test,
                "fn check(c: &Counters) { assert!(c.loads > 0); }",
            ),
        ]);
        assert!(run(&w).is_empty());
    }

    #[test]
    fn conservation_single_file_fallback() {
        // Single corpus file: reads inside impl Counters don't attribute;
        // a read elsewhere in the file does.
        let bad = ws(&[(
            "counter-conservation_1.rs",
            FileClass::OperatorLib,
            "pub struct Counters { pub loads: u64 }\nimpl Counters { fn total(&self) -> u64 { self.loads } }\nfn charge(c: &mut Counters) { c.loads += 1; }",
        )]);
        assert_eq!(rules(&run(&bad)), ["counter-conservation"]);
        let good = ws(&[(
            "counter-conservation_2.rs",
            FileClass::OperatorLib,
            "pub struct Counters { pub loads: u64 }\nfn charge(c: &mut Counters) { c.loads += 1; }\nfn figure(c: &Counters) -> u64 { c.loads }",
        )]);
        assert!(run(&good).is_empty(), "{:?}", run(&good));
    }

    #[test]
    fn fault_tick_coverage_flags_untick_charges() {
        let w = ws(&[(
            "crates/sgx-sim/src/machine.rs",
            FileClass::Lib,
            "impl M {\nfn fault_tick(&mut self) { self.slow(); }\nfn slow(&mut self) { self.cycles += 1.0; }\nfn charge(&mut self) { self.cycles += 2.0; self.fault_tick(); }\nfn leaky(&mut self) { self.cycles += 3.0; }\n}",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["fault-tick-coverage"]);
        assert!(found[0].1.message.contains("`leaky`"));
    }

    #[test]
    fn fault_tick_coverage_spans_the_module_set() {
        // `commit` lives in a pragma'd layer file and reaches `fault_tick`
        // (defined in a sibling set file) transitively through `relay` —
        // silent. `stray` in the same layer charges without reaching — flagged.
        let w = ws(&[
            (
                "crates/sgx-sim/src/machine/core.rs",
                FileClass::Lib,
                "// sgx-lint: fault-tick-module\nimpl M {\nfn commit(&mut self) { self.cycles += 1.0; self.relay(); }\nfn relay(&mut self) { self.fault_tick(); }\nfn stray(&mut self) { self.cycles += 2.0; }\n}",
            ),
            (
                "crates/sgx-sim/src/machine/transitions.rs",
                FileClass::Lib,
                "// sgx-lint: fault-tick-module\nimpl M {\nfn fault_tick(&mut self) { self.slow(); }\nfn slow(&mut self) { self.cycles += 1.0; }\n}",
            ),
        ]);
        let found = run(&w);
        assert_eq!(rules(&found), ["fault-tick-coverage"], "{found:?}");
        assert!(found[0].1.message.contains("`stray`"));
    }

    #[test]
    fn fault_tick_coverage_pragma_without_tick_flags_all_charges() {
        // A layer opts in but no set file defines `fault_tick` at all:
        // every charge path is invisible to the fault engine — flag it.
        let w = ws(&[(
            "crates/sgx-sim/src/machine/numa.rs",
            FileClass::Lib,
            "// sgx-lint: fault-tick-module\nimpl M {\nfn upi(&mut self) { self.cycles += 9.0; }\n}",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["fault-tick-coverage"], "{found:?}");
        assert!(found[0].1.message.contains("`upi`"));
    }

    #[test]
    fn provenance_requires_pragma_and_tags() {
        let no_pragma = ws(&[(
            "crates/sgx-sim/src/other.rs",
            FileClass::Lib,
            "pub const N: usize = 64;",
        )]);
        assert!(run(&no_pragma).is_empty());
        let w = ws(&[(
            "crates/sgx-sim/src/config.rs",
            FileClass::Lib,
            "// sgx-lint: calibration-file\npub const A: usize = 64; // uarch: cache line\n// paper: §4.1 DRAM latency\npub const B: f64 = 220.0;\npub const C: f64 = 175.0;\n",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["calibration-provenance"]);
        assert_eq!(found[0].1.line, 5);
    }

    #[test]
    fn conservation_resolves_impl_type_aliases() {
        // Reads inside `impl CountersAlias` are the struct's own
        // bookkeeping and must not attribute — the alias cannot launder
        // them. The weaken knob restores the pre-hardening blind spot.
        let bad = ws(&[(
            "counter-conservation_4.rs",
            FileClass::OperatorLib,
            "pub struct Counters { pub loads: u64 }\ntype CountersAlias = Counters;\nimpl CountersAlias { fn total(&self) -> u64 { self.loads } }\nfn charge(c: &mut Counters) { c.loads += 1; }",
        )]);
        assert_eq!(rules(&run(&bad)), ["counter-conservation"], "{:?}", run(&bad));
        let weak = Config { taint_aliases: false, ..Config::default() };
        assert!(run_cfg(&bad, &weak).is_empty());
    }

    #[test]
    fn charge_escape_flags_choke_point_bypass() {
        // `commit` and its callee `apply` are the choke point (exempt);
        // `resolve` reaches it (clean); `leak` charges a clock without
        // reaching (flagged); `reset` only plain-assigns (clean).
        let w = ws(&[(
            "crates/sgx-sim/src/machine/core.rs",
            FileClass::Lib,
            "// sgx-lint: charge-module\nimpl M {\nfn commit(&mut self) { self.cycles += 1.0; self.apply(); }\nfn apply(&mut self) { self.m.counters.loads += 1; }\nfn resolve(&mut self) { self.commit(); }\nfn leak(&mut self) { self.core_clock += 7.0; }\nfn reset(&mut self) { self.wall = 0.0; }\n}",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["charge-escape"], "{found:?}");
        assert!(found[0].1.message.contains("`leak`"), "{}", found[0].1.message);
    }

    #[test]
    fn charge_escape_sees_through_reborrows() {
        let w = ws(&[(
            "crates/sgx-sim/src/machine/core.rs",
            FileClass::Lib,
            "// sgx-lint: charge-module\nimpl M {\nfn commit(&mut self) { self.cycles += 1.0; }\nfn leak(&mut self) { let c = &mut self.m.counters; c.loads += 1; }\n}",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["charge-escape"], "{found:?}");
        assert!(found[0].1.message.contains("`leak`"));
    }

    #[test]
    fn charge_escape_without_commit_flags_all_charges() {
        // A pragma'd module from which `commit` is unreachable (not even
        // defined): every charge path escapes the choke point — flag it.
        let w = ws(&[(
            "crates/sgx-sim/src/machine/numa.rs",
            FileClass::Lib,
            "// sgx-lint: charge-module\nimpl M {\nfn upi(&mut self) { self.wall += 9.0; }\n}",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["charge-escape"], "{found:?}");
        assert!(found[0].1.message.contains("`upi`"));
    }

    #[test]
    fn charge_escape_requires_the_pragma() {
        let w = ws(&[(
            "crates/sgx-sim/src/machine/core.rs",
            FileClass::Lib,
            "impl M { fn leak(&mut self) { self.core_clock += 1.0; } }",
        )]);
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn des_invariant_event_totality() {
        // `Drop` is enqueued but only a wildcard arm would catch it.
        let w = ws(&[(
            "crates/sgx-serve/src/des.rs",
            FileClass::Lib,
            "// sgx-lint: des-module\nenum EvKind { Arrive, Drop }\nimpl E {\nfn go(&mut self, k: EvKind) { self.push(EvKind::Arrive); self.push(EvKind::Drop);\n  match k { EvKind::Arrive => {}, _ => {} } }\n}",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["des-invariant"], "{found:?}");
        assert!(found[0].1.message.contains("`EvKind::Drop`"), "{}", found[0].1.message);
    }

    #[test]
    fn des_invariant_counter_reconcile_conservation() {
        // `done` is asserted by `reconcile` (clean); `retries` is
        // incremented but reconciled nowhere (flagged); the *local*
        // `retries` accumulator is not a ledger write (clean).
        let w = ws(&[(
            "crates/sgx-serve/src/des.rs",
            FileClass::Lib,
            "// sgx-lint: des-module\npub struct ServiceCounters { pub done: u64, pub retries: u64 }\nfn reconcile(c: &ServiceCounters) { assert_eq!(c.done, 1); }\nimpl E {\nfn step(&mut self) { self.c.done += 1; self.c.retries += 1; }\nfn local(&mut self) { let mut retries = 0; retries += 1; let _ = retries; }\n}",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["des-invariant"], "{found:?}");
        assert!(found[0].1.message.contains("`retries`"), "{}", found[0].1.message);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn des_invariant_conservation_is_vacuous_without_reconcile() {
        // No `reconcile` fn in the scan: sub-check (2) cannot apply —
        // partial scans (a solo des.rs under selfcheck) stay clean.
        let w = ws(&[(
            "crates/sgx-serve/src/des.rs",
            FileClass::Lib,
            "// sgx-lint: des-module\npub struct ServiceCounters { pub done: u64 }\nimpl E { fn step(&mut self) { self.c.done += 1; } }",
        )]);
        assert!(run(&w).is_empty(), "{:?}", run(&w));
    }

    #[test]
    fn des_invariant_flags_ambient_entropy() {
        let w = ws(&[(
            "crates/sgx-serve/src/des.rs",
            FileClass::Lib,
            "// sgx-lint: des-module\nimpl E { fn pick(&mut self) -> u64 { self.rng.gen_range(0, 9) } }",
        )]);
        let found = run(&w);
        assert_eq!(rules(&found), ["des-invariant"], "{found:?}");
        assert!(found[0].1.message.contains("`gen_range`"));
        // Without the pragma the rule is out of scope.
        let off = ws(&[(
            "crates/sgx-serve/src/des.rs",
            FileClass::Lib,
            "impl E { fn pick(&mut self) -> u64 { self.rng.gen_range(0, 9) } }",
        )]);
        assert!(run(&off).is_empty());
    }
}
