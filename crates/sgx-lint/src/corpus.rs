//! rapx-bench-style self-evaluation: score the lint against a labeled
//! corpus of positive (must fire) and negative (must stay silent)
//! testcases, reporting per-rule TP/FN/FP.
//!
//! Layout: `<dir>/positive/<rule>_<n>.rs` and `<dir>/negative/<rule>_<n>.rs`.
//! The filename prefix up to the trailing `_<n>` is the labeled rule. A
//! positive case is a true positive when the analyzer reports ≥1 finding
//! of its labeled rule, otherwise a false negative. A negative case is
//! clean when the analyzer reports *zero* findings of any rule, otherwise
//! every reported finding counts as a false positive.
//!
//! Corpus files are analyzed as operator-crate library code
//! ([`FileClass::OperatorLib`]) so that every rule is in scope.

use crate::engine::{FileClass, RULES};
use std::collections::BTreeMap;
use std::path::Path;

/// TP/FN/FP tallies for one rule.
#[derive(Debug, Default, Clone, Copy)]
pub struct RuleScore {
    /// Positive cases where the labeled rule fired.
    pub tp: usize,
    /// Positive cases where it did not (misses).
    pub fn_: usize,
    /// Findings reported on negative cases (noise).
    pub fp: usize,
}

/// Whole-corpus scorecard.
#[derive(Debug, Default)]
pub struct Score {
    /// Per-rule tallies, keyed by rule name.
    pub per_rule: BTreeMap<String, RuleScore>,
    /// Total corpus files scored.
    pub cases: usize,
}

impl Score {
    /// True when every positive fired and no negative produced noise.
    pub fn perfect(&self) -> bool {
        self.per_rule.values().all(|s| s.fn_ == 0 && s.fp == 0)
    }

    /// Render the scorecard as an aligned table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<20} {:>4} {:>4} {:>4}\n", "rule", "TP", "FN", "FP"));
        let (mut tp, mut fn_, mut fp) = (0, 0, 0);
        for (rule, s) in &self.per_rule {
            out.push_str(&format!("{rule:<20} {:>4} {:>4} {:>4}\n", s.tp, s.fn_, s.fp));
            tp += s.tp;
            fn_ += s.fn_;
            fp += s.fp;
        }
        out.push_str(&format!("{:<20} {tp:>4} {fn_:>4} {fp:>4}\n", "total"));
        out.push_str(&format!(
            "{} corpus cases: {}\n",
            self.cases,
            if self.perfect() { "100% TP, 0 FP" } else { "MISSES PRESENT" }
        ));
        out
    }
}

/// Extract the labeled rule from a corpus filename like
/// `nondeterminism_2.rs`. Shared with the robustness scorer.
pub(crate) fn labeled_rule(file: &Path) -> Option<String> {
    let stem = file.file_stem()?.to_str()?;
    let (rule, _n) = stem.rsplit_once('_')?;
    RULES.contains(&rule).then(|| rule.to_string())
}

/// Score the corpus at `dir`, which must contain `positive/` and
/// `negative/` subdirectories of labeled `.rs` cases.
pub fn score(dir: &Path) -> Result<Score, String> {
    let mut score = Score::default();
    for rule in RULES {
        score.per_rule.insert(rule.to_string(), RuleScore::default());
    }
    for (side, positive) in [("positive", true), ("negative", false)] {
        let side_dir = dir.join(side);
        let files = crate::collect_rust_files(&side_dir);
        if files.is_empty() {
            return Err(format!("no corpus cases under {}", side_dir.display()));
        }
        for file in files {
            let Some(rule) = labeled_rule(&file) else {
                return Err(format!(
                    "corpus file {} is not named <rule>_<n>.rs",
                    file.display()
                ));
            };
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let report =
                crate::analyze_single(&file.to_string_lossy(), FileClass::OperatorLib, &src);
            score.cases += 1;
            let entry = score.per_rule.entry(rule.clone()).or_default();
            if positive {
                if report.findings.iter().any(|f| f.rule == rule) {
                    entry.tp += 1;
                } else {
                    entry.fn_ += 1;
                }
            } else {
                // Any finding at all on a negative case is noise; charge it
                // to the rule that produced it.
                if report.findings.is_empty() {
                    continue;
                }
                for f in &report.findings {
                    score.per_rule.entry(f.rule.clone()).or_default().fp += 1;
                }
            }
        }
    }
    Ok(score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filename_labeling() {
        assert_eq!(
            labeled_rule(Path::new("corpus/positive/nondeterminism_2.rs")),
            Some("nondeterminism".to_string())
        );
        assert_eq!(
            labeled_rule(Path::new("counter-truncation_10.rs")),
            Some("counter-truncation".to_string())
        );
        assert_eq!(labeled_rule(Path::new("not_a_rule.rs")), None);
        assert_eq!(labeled_rule(Path::new("noindex.rs")), None);
    }

    #[test]
    fn perfect_requires_no_misses_and_no_noise() {
        let mut s = Score::default();
        s.per_rule.insert("unsafe-code".into(), RuleScore { tp: 3, fn_: 0, fp: 0 });
        assert!(s.perfect());
        s.per_rule.insert("nondeterminism".into(), RuleScore { tp: 2, fn_: 1, fp: 0 });
        assert!(!s.perfect());
        assert!(s.table().contains("MISSES"));
    }
}
